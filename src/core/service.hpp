// Long-lived, fault-tolerant sweep service.
//
// Sweep_service is the process-resident owner of everything a sweep needs
// more than once: per-kernel Cone_libraries, per-configuration format-search
// grids, and — when a cache directory is given — a crash-safe,
// content-addressed result cache persisting sweep entries, format grids and
// virtual-synthesis reports across processes. A warm cache serves a repeated
// request without running a single synthesis or format search, and the
// report's counters prove it.
//
// Robustness contract:
//   - The cache is advisory: every load either returns a record that was
//     written atomically and passes checksum + schema validation, or the
//     service recomputes. Corrupt records are quarantined, never trusted,
//     and never abort a request.
//   - Batch mode (run_requests) drains requests through a Job_queue:
//     identical requests (by content key) execute once, each attempt gets a
//     deadline on the injected clock, and transient faults (io, timeout)
//     retry with backoff. Every outcome is structured — one bad request
//     cannot take down the batch.
//   - All filesystem and clock traffic goes through Env_hooks, so the fault
//     harness (tests/test_fault_injection.cpp) can exercise torn writes,
//     ENOSPC and stuck jobs deterministically.
//
// Sweep_session (core/sweep.hpp) remains the one-shot front: it validates a
// config at construction and delegates to a private, cache-less service.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "support/env_hooks.hpp"
#include "support/job_queue.hpp"
#include "support/result_cache.hpp"

namespace islhls {

struct Service_options {
    // Directory of the persistent result cache; empty = in-memory only.
    // Created on first use; a path that exists but is not a usable
    // directory fails construction with a named Io_error.
    std::string cache_dir;
    const Env_hooks* hooks = nullptr;  // filesystem + clock seam
    // Batch mode: per-attempt deadline (0 = none) and transient-fault
    // retry policy for each request.
    std::int64_t deadline_ms = 0;
    Retry_policy retry;
};

// One batch request's result: either a report or a structured failure.
struct Request_outcome {
    std::string key;      // content key — equal keys shared one execution
    bool ok = false;
    Error_kind kind = Error_kind::internal;  // meaningful when !ok
    std::string message;                     // meaningful when !ok
    int attempts = 0;
    bool deduplicated = false;
    Sweep_report report;  // valid when ok
};

class Sweep_service {
public:
    // Throws Io_error when cache_dir exists but cannot be used.
    explicit Sweep_service(Service_options options = {});
    ~Sweep_service();

    // Runs one validated request, consulting and filling the result cache.
    // Throws Islhls_error (kind user) for invalid configs; cache trouble
    // degrades to recompute instead of throwing.
    Sweep_report run(const Sweep_config& config);

    // Batch front: queue every request, dedup identical ones, drain with
    // deadlines + retry. Never throws for per-request failures — each
    // outcome carries its own taxonomy kind. Outcomes are request-ordered.
    std::vector<Request_outcome> run_requests(
        const std::vector<Sweep_config>& requests);

    // The resident per-kernel cache: frontend + symbolic execution happen on
    // first use; cones and syntheses memoize for the service's lifetime.
    Cone_library& library(const std::string& kernel);

    // The persistent cache, or nullptr when running in-memory only.
    Result_cache* cache() { return cache_ ? cache_.get() : nullptr; }
    const Env_hooks& hooks() const { return *hooks_; }
    const Service_options& options() const { return options_; }

private:
    // The actual sweep; `job` (when batch-driven) is checkpointed between
    // combinations so deadlines and cancellation interrupt long requests at
    // clean boundaries.
    Sweep_report run_impl(const Sweep_config& config, Job_context* job);

    // The kernel's content identity, computed once per kernel (requires the
    // library, i.e. frontend + symexec, on first call).
    const std::string& ir_key(const std::string& kernel);

    Service_options options_;
    const Env_hooks* hooks_;
    std::unique_ptr<Result_cache> cache_;
    std::map<std::string, std::unique_ptr<Cone_library>> libraries_;
    std::map<std::string, std::string> ir_keys_;
    // Format grids keyed by their full content key (kernel identity plus
    // every grid-affecting option), so requests with different search
    // settings never share a grid.
    std::map<std::string, Explorer::Format_grid> format_grids_;
};

}  // namespace islhls
