#include "core/service.hpp"

#include <algorithm>
#include <chrono>
#include <tuple>
#include <utility>

#include "core/sweep_records.hpp"
#include "dse/architecture.hpp"
#include "dse/pareto.hpp"
#include "dse/streaming_backend.hpp"
#include "grid/frame_ops.hpp"
#include "grid/frame_set.hpp"
#include "kernels/kernels.hpp"
#include "sim/arch_sim.hpp"
#include "sim/exec_engine.hpp"
#include "sim/golden.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/text.hpp"
#include "symexec/executor.hpp"
#include "synth/device.hpp"

namespace islhls {

namespace {

// Initial frames + ghost golden for one (kernel, iterations) pair: the
// golden does not depend on the device, so one run computes it once per
// pair no matter how many devices validate against it.
using Validation_cache =
    std::map<std::pair<std::string, int>, std::pair<Frame_set, Frame_set>>;
// Fixed-mode twin, additionally keyed by the format (per-architecture
// formats vary across entries): initial frames + raw-word ghost golden.
using Fixed_validation_cache =
    std::map<std::tuple<std::string, int, int, int>,
             std::pair<Frame_set, Fixed_frame_result>>;

// Functional golden check of one feasible fit: simulate the fitted
// architecture on a synthetic validation frame and return the max absolute
// deviation from the ghost golden (whose engine run fans its rows across
// `pool` when given).
double validate_fit(const Sweep_config& config, Cone_library& library,
                    const Sweep_entry& entry, Thread_pool* pool,
                    Validation_cache& cache) {
    const Kernel_def& kernel = kernel_by_name(entry.kernel);
    auto it = cache.find({entry.kernel, entry.iterations});
    if (it == cache.end()) {
        Frame_set initial = kernel.make_initial(
            make_synthetic_scene(config.validation_frame_width,
                                 config.validation_frame_height,
                                 config.validation_seed));
        Frame_set golden =
            run_ghost_ir(library.step(), initial, entry.iterations, kernel.boundary,
                         Exec_options{1, 0, 0, pool});
        it = cache.emplace(std::make_pair(entry.kernel, entry.iterations),
                           std::make_pair(std::move(initial), std::move(golden)))
                 .first;
    }
    const Frame_set& initial = it->second.first;
    const Frame_set& golden = it->second.second;
    Arch_sim_options sim_options;
    sim_options.boundary = kernel.boundary;
    const Arch_sim_result sim =
        simulate_architecture(library, entry.best.instance, initial, sim_options);
    double max_err = 0.0;
    for (const std::string& field : kernel.state_fields) {
        max_err = std::max(max_err, max_abs_diff(sim.final_state.field(field),
                                                 golden.field(field)));
    }
    return max_err;
}

// Fixed-mode twin: simulate under `format` and return the max raw-word
// deviation (LSBs) from the fixed frame engine's ghost golden.
double validate_fit_fixed(const Sweep_config& config, Cone_library& library,
                          const Sweep_entry& entry, const Fixed_format& format,
                          Thread_pool* pool, Fixed_validation_cache& cache) {
    const Kernel_def& kernel = kernel_by_name(entry.kernel);
    const auto key = std::make_tuple(entry.kernel, entry.iterations,
                                     format.integer_bits, format.frac_bits);
    auto it = cache.find(key);
    if (it == cache.end()) {
        Frame_set initial = kernel.make_initial(
            make_synthetic_scene(config.validation_frame_width,
                                 config.validation_frame_height,
                                 config.validation_seed));
        Fixed_frame_result golden =
            run_ghost_ir(library.step(), initial, entry.iterations, kernel.boundary,
                         format, Exec_options{1, 0, 0, pool});
        it = cache.emplace(key, std::make_pair(std::move(initial), std::move(golden)))
                 .first;
    }
    const Frame_set& initial = it->second.first;
    const Fixed_frame_result& golden = it->second.second;
    Arch_sim_options sim_options;
    sim_options.boundary = kernel.boundary;
    sim_options.fixed_point = true;
    sim_options.format = format;
    const Arch_sim_result sim =
        simulate_architecture(library, entry.best.instance, initial, sim_options);
    // The simulator hands fixed-mode results back as from_raw values, which
    // round-trip exactly through to_raw for every format the constructor
    // admits (<= 53 bits) — so the comparison really is raw word against
    // raw word.
    const Raw_quantizer to_raw_word(format);
    std::int64_t max_err = 0;
    for (const std::string& field : kernel.state_fields) {
        const Frame& frame = sim.final_state.field(field);
        const std::size_t index = static_cast<std::size_t>(
            std::find(golden.names.begin(), golden.names.end(), field) -
            golden.names.begin());
        const std::vector<std::int64_t>& expected = golden.raw[index];
        for (std::size_t i = 0; i < expected.size(); ++i) {
            const std::int64_t d = to_raw_word(frame.data()[i]) - expected[i];
            max_err = std::max(max_err, d < 0 ? -d : d);
        }
    }
    return static_cast<double>(max_err);
}

// Snapshot of every library's meters: run_impl reports deltas, so a
// long-lived service attributes cache effectiveness to the request that
// earned it rather than accumulating across requests.
struct Library_meters {
    int cone_builds = 0;
    long long cone_lookups = 0;
    int synthesis_runs = 0;
    long long synthesis_lookups = 0;
    double synthesis_cpu_seconds = 0.0;
    int synthesis_loads = 0;
};

Library_meters total_meters(
    const std::map<std::string, std::unique_ptr<Cone_library>>& libraries) {
    Library_meters total;
    for (const auto& [name, lib] : libraries) {
        total.cone_builds += lib->cone_builds();
        total.cone_lookups += lib->cone_lookups();
        total.synthesis_runs += lib->synthesis_runs();
        total.synthesis_lookups += lib->synthesis_lookups();
        total.synthesis_cpu_seconds += lib->synthesis_cpu_seconds();
        total.synthesis_loads += lib->synthesis_loads();
    }
    return total;
}

}  // namespace

Sweep_service::Sweep_service(Service_options options)
    : options_(std::move(options)),
      hooks_(options_.hooks ? options_.hooks : &real_env_hooks()) {
    if (!options_.cache_dir.empty()) {
        cache_ = std::make_unique<Result_cache>(options_.cache_dir, hooks_);
    }
}

Sweep_service::~Sweep_service() = default;

Cone_library& Sweep_service::library(const std::string& kernel) {
    auto it = libraries_.find(kernel);
    if (it == libraries_.end()) {
        const Kernel_def& def = kernel_by_name(kernel);
        Stencil_step step = extract_stencil(def.c_source);
        auto built = std::make_unique<Cone_library>(std::move(step), def.name);
        it = libraries_.emplace(kernel, std::move(built)).first;
        const std::string key =
            kernel_ir_key(def.name, def.boundary, it->second->step());
        ir_keys_.emplace(kernel, key);
        if (cache_) {
            // Bind the library's persistence seam to the result cache: a
            // record that fails to load or parse is simply a miss (the
            // synthesizer recomputes), and store failures are absorbed by
            // the cache's own counters.
            Result_cache* cache = cache_.get();
            Synthesis_store store;
            store.load =
                [cache](const std::string& k) -> std::optional<Synthesis_report> {
                std::optional<std::string> payload = cache->load(k);
                if (!payload) return std::nullopt;
                Synthesis_report report;
                std::string error;
                if (!parse_record(*payload, &report, &error)) return std::nullopt;
                return report;
            };
            store.store = [cache](const std::string& k,
                                  const Synthesis_report& report) {
                cache->store(k, serialize_record(report));
            };
            it->second->attach_synthesis_store(std::move(store),
                                               synthesis_key_prefix(key));
        }
    }
    return *it->second;
}

const std::string& Sweep_service::ir_key(const std::string& kernel) {
    library(kernel);  // ensures frontend + symexec ran and the key exists
    return ir_keys_.at(kernel);
}

Sweep_report Sweep_service::run(const Sweep_config& config) {
    validate_config(config);
    return run_impl(config, nullptr);
}

Sweep_report Sweep_service::run_impl(const Sweep_config& config, Job_context* job) {
    const auto start = std::chrono::steady_clock::now();
    Sweep_report report;
    const Library_meters before = total_meters(libraries_);
    // One pool for the whole request: Explorer candidate fan-outs and the
    // validation runs' row fan-outs all share it.
    std::optional<Thread_pool> pool;
    if (resolve_thread_count(config.space.threads) > 1) {
        pool.emplace(config.space.threads);
    }
    Thread_pool* shared_pool = pool ? &*pool : nullptr;
    Validation_cache validation_cache;
    Fixed_validation_cache fixed_validation_cache;
    for (const std::string& kernel : config.kernels) {
        Cone_library& lib = library(kernel);
        const std::string& ikey = ir_key(kernel);
        for (const std::string& device_name : config.devices) {
            const Fpga_device& device = device_by_name(device_name);
            for (int iterations : config.iteration_counts) {
              for (const std::string& backend_name : config.backends) {
                // Deadlines and cancellation interrupt between combinations:
                // the natural unit of progress, and the unit of cache reuse
                // a retried attempt picks back up from.
                if (job != nullptr) job->checkpoint();

                std::string entry_key;
                if (cache_) {
                    entry_key = sweep_entry_key(ikey, config, device_name,
                                                iterations, backend_name);
                    if (std::optional<std::string> payload = cache_->load(entry_key)) {
                        Sweep_entry cached;
                        std::string error;
                        if (parse_record(*payload, &cached, &error)) {
                            ++report.entry_hits;
                            report.entries.push_back(std::move(cached));
                            continue;  // served without any recomputation
                        }
                        // Checksum-valid but schema-stale record: recompute
                        // and overwrite below.
                    }
                    ++report.entry_misses;
                }

                Evaluator_options evaluator_options;
                evaluator_options.frame_width = config.frame_width;
                evaluator_options.frame_height = config.frame_height;
                evaluator_options.format = config.format;
                evaluator_options.synth.format = config.format;
                evaluator_options.throughput = config.throughput;
                evaluator_options.calibration_windows = config.calibration_windows;

                Space_options space = config.space;
                space.iterations = iterations;

                Sweep_entry entry;
                entry.kernel = kernel;
                entry.device = device_name;
                entry.iterations = iterations;
                entry.backend = backend_name;

                // The per-(window, depth) format grid is N-independent but
                // carries device-priced per-format evaluations, so it is
                // searched once per (content, device) and shared across
                // iteration counts, backends and requests.
                auto format_grid = [&]() -> const Explorer::Format_grid& {
                    const std::string gkey =
                        format_grid_key(ikey, config, device_name);
                    auto grid_it = format_grids_.find(gkey);
                    if (grid_it == format_grids_.end()) {
                        std::optional<Explorer::Format_grid> loaded;
                        if (cache_) {
                            if (std::optional<std::string> payload =
                                    cache_->load(gkey)) {
                                Explorer::Format_grid parsed;
                                std::string error;
                                if (parse_record(*payload, &parsed, &error)) {
                                    loaded = std::move(parsed);
                                }
                            }
                        }
                        if (loaded) {
                            ++report.grid_hits;
                            grid_it =
                                format_grids_.emplace(gkey, std::move(*loaded))
                                    .first;
                        } else {
                            const Kernel_def& def = kernel_by_name(kernel);
                            const Frame_set content = def.make_initial(
                                make_synthetic_scene(config.validation_frame_width,
                                                     config.validation_frame_height,
                                                     config.validation_seed));
                            Explorer grid_explorer(lib, device, evaluator_options,
                                                   space, shared_pool);
                            grid_it = format_grids_
                                          .emplace(gkey,
                                                   grid_explorer.search_formats(
                                                       content, def.boundary,
                                                       config.format_search))
                                          .first;
                            if (cache_) {
                                ++report.grid_misses;
                                cache_->store(gkey,
                                              serialize_record(grid_it->second));
                            }
                        }
                    }
                    return grid_it->second;
                };

                if (backend_name == "streaming") {
                    // The streaming multi-PE array: every candidate is one
                    // closed-form evaluation, so the fan-out that pays for a
                    // pool in the paper backend is a plain loop here. The
                    // backend shares this kernel's Cone_library, so its
                    // calibration syntheses are the ones the paper backend
                    // already paid for (or vice versa).
                    Streaming_backend streaming(lib, device, evaluator_options,
                                                space);
                    streaming.calibrate();
                    bool any = false;
                    std::vector<Backend_point> points;
                    for (const Streaming_config& candidate : streaming.configs()) {
                        const Streaming_evaluation eval =
                            streaming.evaluate(candidate);
                        if (!eval.feasible) continue;
                        if (!any || eval.fps > entry.streaming_best.fps) {
                            entry.streaming_best = eval;
                            any = true;
                        }
                        if (config.with_pareto) {
                            points.push_back({to_string(eval.config),
                                              eval.area_luts,
                                              eval.seconds_per_frame, eval.fps,
                                              ""});
                        }
                    }
                    entry.fits = any;
                    if (config.with_pareto) {
                        std::vector<Design_point> dps;
                        dps.reserve(points.size());
                        for (std::size_t i = 0; i < points.size(); ++i) {
                            dps.push_back({points[i].area_luts,
                                           points[i].seconds_per_frame, i});
                        }
                        const std::vector<std::size_t> front = pareto_front(dps);
                        entry.pareto_points = points.size();
                        entry.pareto_front_size = front.size();
                        for (std::size_t i : front) {
                            entry.front_points.push_back(
                                {points[i].config, points[i].area_luts,
                                 points[i].seconds_per_frame, points[i].fps});
                        }
                    }
                    if (config.search_formats && entry.fits) {
                        // A streaming PE fuses `depth` one-column cones, so
                        // the covering cell is (window 1, fused depth); the
                        // re-evaluation rebuilds the backend at the searched
                        // format, which re-derives the per-width clocks and
                        // line-buffer bits at the searched word width.
                        const Format_cell& cell = format_grid().at(
                            1, entry.streaming_best.config.depth, space.max_depth);
                        entry.format_searched = true;
                        entry.format_satisfiable = cell.result.satisfiable;
                        entry.fixed_format = cell.result.format;
                        entry.format_exact = cell.result.exact;
                        entry.format_psnr_db = cell.result.psnr_db;
                        if (entry.format_satisfiable) {
                            Evaluator_options priced = evaluator_options;
                            priced.format = entry.fixed_format;
                            priced.synth.format = entry.fixed_format;
                            Streaming_backend priced_streaming(lib, device,
                                                               priced, space);
                            priced_streaming.calibrate();
                            const Streaming_evaluation re =
                                priced_streaming.evaluate(
                                    entry.streaming_best.config);
                            entry.searched_area_luts = re.area_luts;
                            entry.searched_fps = re.fps;
                            entry.searched_f_max_mhz = re.f_max_mhz;
                        }
                    }
                    if (cache_ && !entry_key.empty() &&
                        cache_->store(entry_key, serialize_record(entry))) {
                        ++report.entry_stores;
                    }
                    report.entries.push_back(std::move(entry));
                    continue;
                }

                Explorer explorer(lib, device, evaluator_options, space,
                                  shared_pool);
                const Explorer::Fit_result fit = explorer.fit_device();
                entry.fits = fit.has_best;
                if (fit.has_best) entry.best = fit.best;
                if (config.with_pareto) {
                    const Explorer::Pareto_result pareto = explorer.explore_pareto();
                    entry.pareto_points = pareto.points.size();
                    entry.pareto_front_size = pareto.front.size();
                    for (std::size_t i : pareto.front) {
                        const Arch_evaluation& e = pareto.points[i];
                        entry.front_points.push_back(
                            {to_string(e.instance), e.estimated_area_luts,
                             e.throughput.seconds_per_frame, e.throughput.fps});
                    }
                }
                if (config.search_formats && entry.fits) {
                    // Narrowest format covering every depth class of the
                    // fit: integer and fraction bits each take the max over
                    // the classes' searched formats (more bits never hurt).
                    // The covering point is exact only when every class is;
                    // the reported PSNR is the worst over the non-exact
                    // classes (each achieves at least it at the covering
                    // width) — exact classes contribute no decibel number,
                    // they are flagged, not folded in as a sentinel.
                    const Explorer::Format_grid& grid = format_grid();
                    entry.format_searched = true;
                    entry.format_satisfiable = true;
                    entry.format_exact = true;
                    entry.format_psnr_db = 0.0;
                    bool first = true;
                    bool any_psnr = false;
                    for (int d : entry.best.instance.depth_classes()) {
                        const Format_search_result& cell =
                            grid.at(entry.best.instance.window, d, space.max_depth)
                                .result;
                        entry.format_satisfiable &= cell.satisfiable;
                        entry.format_exact &= cell.exact;
                        entry.fixed_format.integer_bits =
                            first ? cell.format.integer_bits
                                  : std::max(entry.fixed_format.integer_bits,
                                             cell.format.integer_bits);
                        entry.fixed_format.frac_bits =
                            first ? cell.format.frac_bits
                                  : std::max(entry.fixed_format.frac_bits,
                                             cell.format.frac_bits);
                        if (!cell.exact) {
                            entry.format_psnr_db =
                                any_psnr ? std::min(entry.format_psnr_db,
                                                    cell.psnr_db)
                                         : cell.psnr_db;
                            any_psnr = true;
                        }
                        first = false;
                    }
                    // Re-run the full evaluation at the searched width: a
                    // fresh evaluator over the same library (whose synthesis
                    // cache is format-aware, so calibration syntheses at the
                    // new width memoize across N values) re-prices area,
                    // f_max, cycles and fps — the format column is a true
                    // design point, not an area-only re-price. An
                    // unsatisfiable search leaves only a failed width behind
                    // — pricing at it would be meaningless, so the columns
                    // stay empty instead.
                    if (entry.format_satisfiable) {
                        Evaluator_options priced = evaluator_options;
                        priced.format = entry.fixed_format;
                        priced.synth.format = entry.fixed_format;
                        const Arch_evaluator pricer(lib, device, priced);
                        const Arch_evaluation repriced =
                            pricer.evaluate(entry.best.instance);
                        entry.searched_area_luts = repriced.estimated_area_luts;
                        entry.searched_fps = repriced.throughput.fps;
                        entry.searched_f_max_mhz = repriced.f_max_mhz;
                    }
                }
                if (config.validate && entry.fits) {
                    entry.validation_max_abs_err = validate_fit(
                        config, lib, entry, shared_pool, validation_cache);
                    entry.validated = true;
                }
                if (config.validate_fixed && entry.fits) {
                    const Fixed_format fixed_fmt =
                        entry.format_searched && entry.format_satisfiable
                            ? entry.fixed_format
                            : config.format;
                    entry.validation_max_raw_err =
                        validate_fit_fixed(config, lib, entry, fixed_fmt,
                                           shared_pool, fixed_validation_cache);
                    entry.validated_fixed = true;
                }
                if (cache_ && !entry_key.empty() &&
                    cache_->store(entry_key, serialize_record(entry))) {
                    ++report.entry_stores;
                }
                report.entries.push_back(std::move(entry));
              }
            }
        }
    }
    // Cross-backend merged fronts: with more than one backend and a Pareto
    // sweep, the consecutive entries of each combination fold into one front
    // via the front-of-fronts identity front(A + B) == front(front(A) +
    // front(B)) — the entries' cached front_points are all it needs, so a
    // fully warm run rebuilds these without recomputing anything.
    if (config.with_pareto && config.backends.size() > 1) {
        const std::size_t group = config.backends.size();
        for (std::size_t base = 0; base + group <= report.entries.size();
             base += group) {
            Merged_front merged;
            merged.kernel = report.entries[base].kernel;
            merged.device = report.entries[base].device;
            merged.iterations = report.entries[base].iterations;
            std::vector<Merged_front::Point> candidates;
            std::vector<Design_point> dps;
            for (std::size_t k = 0; k < group; ++k) {
                const Sweep_entry& e = report.entries[base + k];
                for (const Front_point& fp : e.front_points) {
                    dps.push_back({fp.area_luts, fp.seconds_per_frame,
                                   candidates.size()});
                    candidates.push_back({e.backend, fp});
                }
            }
            for (std::size_t i : pareto_front(dps)) {
                merged.points.push_back(candidates[i]);
            }
            report.merged_fronts.push_back(std::move(merged));
        }
    }
    // Meter deltas over the distinct resident libraries — not per occurrence
    // in config.kernels, which may repeat a name.
    const Library_meters after = total_meters(libraries_);
    report.cone_builds = after.cone_builds - before.cone_builds;
    report.cone_lookups = after.cone_lookups - before.cone_lookups;
    report.synthesis_runs = after.synthesis_runs - before.synthesis_runs;
    report.synthesis_lookups = after.synthesis_lookups - before.synthesis_lookups;
    report.synthesis_cpu_seconds =
        after.synthesis_cpu_seconds - before.synthesis_cpu_seconds;
    report.synthesis_loads = after.synthesis_loads - before.synthesis_loads;
    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return report;
}

std::vector<Request_outcome> Sweep_service::run_requests(
    const std::vector<Sweep_config>& requests) {
    // Request-level execution is serial (pool = nullptr) so batch reports
    // are deterministic; each request parallelizes internally through its
    // own exploration pool.
    Job_queue_options queue_options;
    queue_options.deadline_ms = options_.deadline_ms;
    queue_options.retry = options_.retry;
    queue_options.hooks = hooks_;
    Job_queue queue(queue_options);
    std::map<std::string, Sweep_report> reports;
    for (const Sweep_config& config : requests) {
        std::string key = sweep_request_key(config);
        queue.submit(key, [this, config, key, &reports](Job_context& job) {
            validate_config(config);
            reports[key] = run_impl(config, &job);
        });
    }
    std::vector<Job_outcome> outcomes = queue.drain();
    std::vector<Request_outcome> results;
    results.reserve(outcomes.size());
    for (Job_outcome& outcome : outcomes) {
        Request_outcome result;
        result.key = std::move(outcome.key);
        result.ok = outcome.ok;
        result.kind = outcome.kind;
        result.message = std::move(outcome.message);
        result.attempts = outcome.attempts;
        result.deduplicated = outcome.deduplicated;
        if (result.ok) result.report = reports.at(result.key);
        results.push_back(std::move(result));
    }
    return results;
}

}  // namespace islhls
