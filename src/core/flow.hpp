// The complete HLS flow of the paper (Fig. 2), as a single facade:
//
//   C source ──► frontend (parse + sema) ──► symbolic execution
//            ──► cone identification / construction (register reuse)
//            ──► VHDL generation
//            ──► area (Eq. 1) + throughput estimation
//            ──► design space exploration ──► Pareto set / device fit
//
// Typical use:
//
//   Flow_options opt;
//   opt.iterations = 10;
//   Hls_flow flow = Hls_flow::from_source(my_kernel_c, opt);
//   auto pareto = flow.pareto();          // area/throughput trade-off set
//   auto fit    = flow.device_fit();      // best design for opt.device
//   std::string vhdl = flow.generate_vhdl(4, 2);  // 4x4-window depth-2 cone
#pragma once

#include <memory>
#include <string>

#include "backend/vhdl.hpp"
#include "dse/explorer.hpp"
#include "kernels/kernels.hpp"
#include "symexec/executor.hpp"

namespace islhls {

struct Flow_options {
    int iterations = 10;
    int frame_width = 1024;
    int frame_height = 768;
    std::string device = "xc6vlx760";
    Fixed_format format;          // hardware number format
    Symexec_options symexec;      // analysis bounds
    Space_options space;          // exploration bounds (iterations copied in)
    Throughput_params throughput; // resource model knobs
    std::vector<int> calibration_windows = {1, 2};  // alpha syntheses
};

class Hls_flow {
public:
    // Runs the frontend + symbolic execution on a C kernel.
    static Hls_flow from_source(const std::string& c_source,
                                const Flow_options& options = {});
    // Uses a built-in kernel's source (and its registry name).
    static Hls_flow from_kernel(const Kernel_def& kernel,
                                const Flow_options& options = {});

    const std::string& kernel_name() const { return kernel_name_; }
    const Flow_options& options() const { return options_; }
    const Stencil_step& step() const { return library_->step(); }
    Cone_library& cones() { return *library_; }
    Explorer& explorer() { return *explorer_; }
    const Fpga_device& device() const;

    // --- deliverables ------------------------------------------------------------
    // Synthesizable VHDL for one cone (entity only; pair with support_package()).
    std::string generate_vhdl(int window, int depth);
    std::string support_package() const;

    // Exploration entry points (see Explorer).
    Explorer::Pareto_result pareto();
    Explorer::Fit_result device_fit();
    Explorer::Area_validation area_validation();

    // Human-readable flow summary (dependencies, footprint, cone examples).
    std::string describe();

private:
    Hls_flow(Stencil_step step, std::string kernel_name, const Flow_options& options);

    Flow_options options_;
    std::string kernel_name_;
    std::unique_ptr<Cone_library> library_;
    std::unique_ptr<Explorer> explorer_;
};

}  // namespace islhls
