#include "core/sweep_records.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "ir/print.hpp"
#include "support/text.hpp"

namespace islhls {

std::string encode_double_bits(double value) {
    char out[17];
    std::snprintf(out, sizeof out, "%016llx",
                  static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(value)));
    return out;
}

bool decode_double_bits(const std::string& text, double* value) {
    if (text.size() != 16) return false;
    std::uint64_t bits = 0;
    for (char c : text) {
        int digit;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
        else return false;
        bits = (bits << 4) | static_cast<std::uint64_t>(digit);
    }
    *value = std::bit_cast<double>(bits);
    return true;
}

namespace {

// --- strict line-oriented reading -------------------------------------------------
// Records are `name value...` lines read in a fixed order; any deviation
// (wrong name, malformed value, trailing garbage) fails the whole parse and
// the caller recomputes.
class Line_reader {
public:
    explicit Line_reader(const std::string& text) {
        for (const std::string& line : split(text, '\n')) lines_.push_back(line);
        // A well-formed record ends with "end\n", so split leaves one empty
        // trailing element; drop it.
        if (!lines_.empty() && lines_.back().empty()) lines_.pop_back();
    }

    // Consumes the next line, requiring its first token to be `name`;
    // `*rest` receives everything after the single separating space ("" for
    // a bare `name` line).
    bool expect(const std::string& name, std::string* rest) {
        if (failed_ || next_ >= lines_.size()) return fail(name, "<end>");
        const std::string& line = lines_[next_];
        if (line == name) {
            ++next_;
            *rest = "";
            return true;
        }
        if (line.size() > name.size() && line.compare(0, name.size(), name) == 0 &&
            line[name.size()] == ' ') {
            ++next_;
            *rest = line.substr(name.size() + 1);
            return true;
        }
        return fail(name, line);
    }

    bool done() {
        if (failed_) return false;
        if (next_ != lines_.size()) return fail("<end>", lines_[next_]);
        return true;
    }

    bool fail(const std::string& wanted, const std::string& got) {
        if (!failed_) {
            failed_ = true;
            error_ = cat("line ", next_ + 1, ": expected '", wanted, "', got '",
                         got, "'");
        }
        return false;
    }

    void fail_value(const std::string& what) {
        if (!failed_) {
            failed_ = true;
            error_ = cat("line ", next_, ": bad ", what, " value");
        }
    }

    bool failed() const { return failed_; }
    const std::string& error() const { return error_; }

private:
    std::vector<std::string> lines_;
    std::size_t next_ = 0;
    bool failed_ = false;
    std::string error_;
};

bool parse_ll_strict(const std::string& text, long long* value) {
    if (text.empty()) return false;
    char* end = nullptr;
    *value = std::strtoll(text.c_str(), &end, 10);
    return end == text.c_str() + text.size();
}

// Field helpers over the reader: each consumes one `name value` line.
bool read_ll(Line_reader& r, const std::string& name, long long* value) {
    std::string rest;
    if (!r.expect(name, &rest)) return false;
    if (!parse_ll_strict(rest, value)) {
        r.fail_value(name);
        return false;
    }
    return true;
}

bool read_int(Line_reader& r, const std::string& name, int* value) {
    long long wide = 0;
    if (!read_ll(r, name, &wide)) return false;
    *value = static_cast<int>(wide);
    return true;
}

bool read_size(Line_reader& r, const std::string& name, std::size_t* value) {
    long long wide = 0;
    if (!read_ll(r, name, &wide) || wide < 0) return false;
    *value = static_cast<std::size_t>(wide);
    return true;
}

bool read_bool(Line_reader& r, const std::string& name, bool* value) {
    std::string rest;
    if (!r.expect(name, &rest)) return false;
    if (rest != "0" && rest != "1") {
        r.fail_value(name);
        return false;
    }
    *value = rest == "1";
    return true;
}

bool read_double(Line_reader& r, const std::string& name, double* value) {
    std::string rest;
    if (!r.expect(name, &rest)) return false;
    if (!decode_double_bits(rest, value)) {
        r.fail_value(name);
        return false;
    }
    return true;
}

bool read_text(Line_reader& r, const std::string& name, std::string* value) {
    return r.expect(name, value);
}

// --- Arch_evaluation block --------------------------------------------------------

void write_evaluation(std::ostringstream& os, const Arch_evaluation& e) {
    os << "eval.window " << e.instance.window << "\n";
    os << "eval.depths";
    for (int d : e.instance.level_depths) os << " " << d;
    os << "\n";
    os << "eval.cores";
    for (const auto& [depth, cores] : e.instance.cores_per_depth) {
        os << " " << depth << ":" << cores;
    }
    os << "\n";
    os << "eval.feasible " << (e.feasible ? 1 : 0) << "\n";
    os << "eval.reason";
    if (!e.infeasible_reason.empty()) os << " " << e.infeasible_reason;
    os << "\n";
    os << "eval.estimated_area_luts " << encode_double_bits(e.estimated_area_luts)
       << "\n";
    os << "eval.actual_area_luts " << encode_double_bits(e.actual_area_luts) << "\n";
    os << "eval.f_max_mhz " << encode_double_bits(e.f_max_mhz) << "\n";
    os << "eval.windows_per_frame " << e.windows_per_frame << "\n";
    os << "eval.tp.cycles_per_window "
       << encode_double_bits(e.throughput.cycles_per_window) << "\n";
    os << "eval.tp.core_bound " << encode_double_bits(e.throughput.core_bound_cycles)
       << "\n";
    os << "eval.tp.onchip_bound "
       << encode_double_bits(e.throughput.onchip_bound_cycles) << "\n";
    os << "eval.tp.offchip_bound "
       << encode_double_bits(e.throughput.offchip_bound_cycles) << "\n";
    os << "eval.tp.bottleneck";
    if (!e.throughput.bottleneck.empty()) os << " " << e.throughput.bottleneck;
    os << "\n";
    os << "eval.tp.seconds_per_frame "
       << encode_double_bits(e.throughput.seconds_per_frame) << "\n";
    os << "eval.tp.fps " << encode_double_bits(e.throughput.fps) << "\n";
    os << "eval.tp.class_cycles";
    for (const auto& [depth, cycles] : e.throughput.class_cycles) {
        os << " " << depth << ":" << encode_double_bits(cycles);
    }
    os << "\n";
    os << "eval.mem.input " << encode_double_bits(e.memory.input_buffer_kbits)
       << "\n";
    os << "eval.mem.intermediate " << encode_double_bits(e.memory.intermediate_kbits)
       << "\n";
    os << "eval.mem.output " << encode_double_bits(e.memory.output_buffer_kbits)
       << "\n";
    os << "eval.mem.total " << encode_double_bits(e.memory.total_kbits) << "\n";
    os << "eval.mem.whole_frame " << encode_double_bits(e.memory.whole_frame_kbits)
       << "\n";
    os << "eval.mem.saving " << encode_double_bits(e.memory.saving_factor) << "\n";
}

bool read_evaluation(Line_reader& r, Arch_evaluation* e) {
    if (!read_int(r, "eval.window", &e->instance.window)) return false;
    std::string rest;
    if (!r.expect("eval.depths", &rest)) return false;
    e->instance.level_depths.clear();
    if (!rest.empty()) {
        for (const std::string& part : split(rest, ' ')) {
            long long depth = 0;
            if (!parse_ll_strict(part, &depth)) {
                r.fail_value("eval.depths");
                return false;
            }
            e->instance.level_depths.push_back(static_cast<int>(depth));
        }
    }
    if (!r.expect("eval.cores", &rest)) return false;
    e->instance.cores_per_depth.clear();
    if (!rest.empty()) {
        for (const std::string& part : split(rest, ' ')) {
            const auto colon = part.find(':');
            long long depth = 0;
            long long cores = 0;
            if (colon == std::string::npos ||
                !parse_ll_strict(part.substr(0, colon), &depth) ||
                !parse_ll_strict(part.substr(colon + 1), &cores)) {
                r.fail_value("eval.cores");
                return false;
            }
            e->instance.cores_per_depth[static_cast<int>(depth)] =
                static_cast<int>(cores);
        }
    }
    if (!read_bool(r, "eval.feasible", &e->feasible)) return false;
    if (!read_text(r, "eval.reason", &e->infeasible_reason)) return false;
    if (!read_double(r, "eval.estimated_area_luts", &e->estimated_area_luts)) {
        return false;
    }
    if (!read_double(r, "eval.actual_area_luts", &e->actual_area_luts)) return false;
    if (!read_double(r, "eval.f_max_mhz", &e->f_max_mhz)) return false;
    if (!read_ll(r, "eval.windows_per_frame", &e->windows_per_frame)) return false;
    if (!read_double(r, "eval.tp.cycles_per_window",
                     &e->throughput.cycles_per_window)) {
        return false;
    }
    if (!read_double(r, "eval.tp.core_bound", &e->throughput.core_bound_cycles)) {
        return false;
    }
    if (!read_double(r, "eval.tp.onchip_bound", &e->throughput.onchip_bound_cycles)) {
        return false;
    }
    if (!read_double(r, "eval.tp.offchip_bound",
                     &e->throughput.offchip_bound_cycles)) {
        return false;
    }
    if (!read_text(r, "eval.tp.bottleneck", &e->throughput.bottleneck)) return false;
    if (!read_double(r, "eval.tp.seconds_per_frame",
                     &e->throughput.seconds_per_frame)) {
        return false;
    }
    if (!read_double(r, "eval.tp.fps", &e->throughput.fps)) return false;
    if (!r.expect("eval.tp.class_cycles", &rest)) return false;
    e->throughput.class_cycles.clear();
    if (!rest.empty()) {
        for (const std::string& part : split(rest, ' ')) {
            const auto colon = part.find(':');
            long long depth = 0;
            double cycles = 0.0;
            if (colon == std::string::npos ||
                !parse_ll_strict(part.substr(0, colon), &depth) ||
                !decode_double_bits(part.substr(colon + 1), &cycles)) {
                r.fail_value("eval.tp.class_cycles");
                return false;
            }
            e->throughput.class_cycles[static_cast<int>(depth)] = cycles;
        }
    }
    if (!read_double(r, "eval.mem.input", &e->memory.input_buffer_kbits)) {
        return false;
    }
    if (!read_double(r, "eval.mem.intermediate", &e->memory.intermediate_kbits)) {
        return false;
    }
    if (!read_double(r, "eval.mem.output", &e->memory.output_buffer_kbits)) {
        return false;
    }
    if (!read_double(r, "eval.mem.total", &e->memory.total_kbits)) return false;
    if (!read_double(r, "eval.mem.whole_frame", &e->memory.whole_frame_kbits)) {
        return false;
    }
    if (!read_double(r, "eval.mem.saving", &e->memory.saving_factor)) return false;
    return true;
}

// --- Streaming_evaluation block ---------------------------------------------------

void write_streaming(std::ostringstream& os, const Streaming_evaluation& e) {
    os << "stream.config " << e.config.depth << " " << e.config.vector_width << " "
       << e.config.pe_count << " " << e.config.channels << "\n";
    os << "stream.feasible " << (e.feasible ? 1 : 0) << "\n";
    os << "stream.reason";
    if (!e.infeasible_reason.empty()) os << " " << e.infeasible_reason;
    os << "\n";
    os << "stream.area_luts " << encode_double_bits(e.area_luts) << "\n";
    os << "stream.datapath_luts " << encode_double_bits(e.datapath_luts) << "\n";
    os << "stream.line_buffer_luts " << encode_double_bits(e.line_buffer_luts)
       << "\n";
    os << "stream.line_buffer_kbits " << encode_double_bits(e.line_buffer_kbits)
       << "\n";
    os << "stream.f_max_mhz " << encode_double_bits(e.f_max_mhz) << "\n";
    os << "stream.passes " << e.passes << "\n";
    os << "stream.compute_cycles " << encode_double_bits(e.compute_cycles) << "\n";
    os << "stream.memory_cycles " << encode_double_bits(e.memory_cycles) << "\n";
    os << "stream.cycles_per_pass " << encode_double_bits(e.cycles_per_pass)
       << "\n";
    os << "stream.bottleneck";
    if (!e.bottleneck.empty()) os << " " << e.bottleneck;
    os << "\n";
    os << "stream.seconds_per_frame " << encode_double_bits(e.seconds_per_frame)
       << "\n";
    os << "stream.fps " << encode_double_bits(e.fps) << "\n";
}

bool read_streaming(Line_reader& r, Streaming_evaluation* e) {
    std::string rest;
    if (!r.expect("stream.config", &rest)) return false;
    {
        const std::vector<std::string> parts = split(rest, ' ');
        long long depth = 0;
        long long vector_width = 0;
        long long pe_count = 0;
        long long channels = 0;
        if (parts.size() != 4 || !parse_ll_strict(parts[0], &depth) ||
            !parse_ll_strict(parts[1], &vector_width) ||
            !parse_ll_strict(parts[2], &pe_count) ||
            !parse_ll_strict(parts[3], &channels)) {
            r.fail_value("stream.config");
            return false;
        }
        e->config.depth = static_cast<int>(depth);
        e->config.vector_width = static_cast<int>(vector_width);
        e->config.pe_count = static_cast<int>(pe_count);
        e->config.channels = static_cast<int>(channels);
    }
    return read_bool(r, "stream.feasible", &e->feasible) &&
           read_text(r, "stream.reason", &e->infeasible_reason) &&
           read_double(r, "stream.area_luts", &e->area_luts) &&
           read_double(r, "stream.datapath_luts", &e->datapath_luts) &&
           read_double(r, "stream.line_buffer_luts", &e->line_buffer_luts) &&
           read_double(r, "stream.line_buffer_kbits", &e->line_buffer_kbits) &&
           read_double(r, "stream.f_max_mhz", &e->f_max_mhz) &&
           read_int(r, "stream.passes", &e->passes) &&
           read_double(r, "stream.compute_cycles", &e->compute_cycles) &&
           read_double(r, "stream.memory_cycles", &e->memory_cycles) &&
           read_double(r, "stream.cycles_per_pass", &e->cycles_per_pass) &&
           read_text(r, "stream.bottleneck", &e->bottleneck) &&
           read_double(r, "stream.seconds_per_frame", &e->seconds_per_frame) &&
           read_double(r, "stream.fps", &e->fps);
}

}  // namespace

// --- Sweep_entry ------------------------------------------------------------------

std::string serialize_record(const Sweep_entry& entry) {
    std::ostringstream os;
    os << "sweep-entry v3\n";
    os << "kernel " << entry.kernel << "\n";
    os << "device " << entry.device << "\n";
    os << "iterations " << entry.iterations << "\n";
    os << "backend " << entry.backend << "\n";
    os << "fits " << (entry.fits ? 1 : 0) << "\n";
    if (entry.fits) {
        if (entry.backend == "streaming") {
            write_streaming(os, entry.streaming_best);
        } else {
            write_evaluation(os, entry.best);
        }
    }
    os << "pareto_points " << entry.pareto_points << "\n";
    os << "pareto_front " << entry.pareto_front_size << "\n";
    os << "front_points " << entry.front_points.size() << "\n";
    for (const Front_point& fp : entry.front_points) {
        // Config last: it may contain spaces (architecture renderings do)
        // but never newlines, so everything after the third token is it.
        os << "fp " << encode_double_bits(fp.area_luts) << " "
           << encode_double_bits(fp.seconds_per_frame) << " "
           << encode_double_bits(fp.fps) << " " << fp.config << "\n";
    }
    os << "validated " << (entry.validated ? 1 : 0) << "\n";
    os << "validation_max_abs_err " << encode_double_bits(entry.validation_max_abs_err)
       << "\n";
    os << "format_searched " << (entry.format_searched ? 1 : 0) << "\n";
    os << "format_satisfiable " << (entry.format_satisfiable ? 1 : 0) << "\n";
    os << "format_exact " << (entry.format_exact ? 1 : 0) << "\n";
    os << "format " << entry.fixed_format.integer_bits << " "
       << entry.fixed_format.frac_bits << "\n";
    os << "format_psnr_db " << encode_double_bits(entry.format_psnr_db) << "\n";
    os << "searched_area_luts " << encode_double_bits(entry.searched_area_luts)
       << "\n";
    os << "searched_fps " << encode_double_bits(entry.searched_fps) << "\n";
    os << "searched_f_max_mhz " << encode_double_bits(entry.searched_f_max_mhz)
       << "\n";
    os << "validated_fixed " << (entry.validated_fixed ? 1 : 0) << "\n";
    os << "validation_max_raw_err "
       << encode_double_bits(entry.validation_max_raw_err) << "\n";
    os << "end\n";
    return os.str();
}

bool parse_record(const std::string& text, Sweep_entry* entry, std::string* error) {
    Line_reader r(text);
    Sweep_entry out;
    std::string rest;
    bool ok = r.expect("sweep-entry", &rest) && rest == "v3";
    if (!ok) {
        if (!r.failed()) r.fail_value("sweep-entry version");
        *error = r.error();
        return false;
    }
    ok = read_text(r, "kernel", &out.kernel) && read_text(r, "device", &out.device) &&
         read_int(r, "iterations", &out.iterations) &&
         read_text(r, "backend", &out.backend) &&
         read_bool(r, "fits", &out.fits);
    if (ok && out.fits) {
        ok = out.backend == "streaming" ? read_streaming(r, &out.streaming_best)
                                        : read_evaluation(r, &out.best);
    }
    std::size_t front_count = 0;
    ok = ok && read_size(r, "pareto_points", &out.pareto_points) &&
         read_size(r, "pareto_front", &out.pareto_front_size) &&
         read_size(r, "front_points", &front_count);
    for (std::size_t i = 0; ok && i < front_count; ++i) {
        if (!r.expect("fp", &rest)) {
            ok = false;
            break;
        }
        const std::vector<std::string> parts = split(rest, ' ');
        Front_point fp;
        if (parts.size() < 4 || !decode_double_bits(parts[0], &fp.area_luts) ||
            !decode_double_bits(parts[1], &fp.seconds_per_frame) ||
            !decode_double_bits(parts[2], &fp.fps)) {
            r.fail_value("fp");
            ok = false;
            break;
        }
        fp.config = parts[3];
        for (std::size_t p = 4; p < parts.size(); ++p) {
            fp.config += ' ';
            fp.config += parts[p];
        }
        out.front_points.push_back(std::move(fp));
    }
    ok = ok && read_bool(r, "validated", &out.validated) &&
         read_double(r, "validation_max_abs_err", &out.validation_max_abs_err) &&
         read_bool(r, "format_searched", &out.format_searched) &&
         read_bool(r, "format_satisfiable", &out.format_satisfiable) &&
         read_bool(r, "format_exact", &out.format_exact);
    if (ok) {
        if (!r.expect("format", &rest)) {
            ok = false;
        } else {
            const std::vector<std::string> parts = split(rest, ' ');
            long long integer_bits = 0;
            long long frac_bits = 0;
            if (parts.size() != 2 || !parse_ll_strict(parts[0], &integer_bits) ||
                !parse_ll_strict(parts[1], &frac_bits)) {
                r.fail_value("format");
                ok = false;
            } else {
                out.fixed_format.integer_bits = static_cast<int>(integer_bits);
                out.fixed_format.frac_bits = static_cast<int>(frac_bits);
            }
        }
    }
    ok = ok && read_double(r, "format_psnr_db", &out.format_psnr_db) &&
         read_double(r, "searched_area_luts", &out.searched_area_luts) &&
         read_double(r, "searched_fps", &out.searched_fps) &&
         read_double(r, "searched_f_max_mhz", &out.searched_f_max_mhz) &&
         read_bool(r, "validated_fixed", &out.validated_fixed) &&
         read_double(r, "validation_max_raw_err", &out.validation_max_raw_err) &&
         r.expect("end", &rest) && r.done();
    if (!ok) {
        *error = r.error();
        return false;
    }
    *entry = std::move(out);
    return true;
}

// --- Format_grid ------------------------------------------------------------------

std::string serialize_record(const Explorer::Format_grid& grid) {
    std::ostringstream os;
    os << "format-grid v3\n";
    os << "backend " << grid.backend << "\n";
    os << "cells " << grid.cells.size() << "\n";
    for (const Explorer::Format_cell& cell : grid.cells) {
        // Fourteen fixed fields per cell: the search result (with explicit
        // exactness and the pre-shrink range floor) plus the per-format full
        // evaluation of the cell's canonical design point (zeros when the
        // cell was not evaluated).
        os << "cell " << cell.window << " " << cell.depth << " "
           << cell.result.format.integer_bits << " " << cell.result.format.frac_bits
           << " " << encode_double_bits(cell.result.psnr_db) << " "
           << (cell.result.exact ? 1 : 0) << " "
           << encode_double_bits(cell.result.max_abs_value) << " "
           << cell.result.range_integer_bits << " "
           << cell.result.formats_tried << " " << (cell.result.satisfiable ? 1 : 0)
           << " " << (cell.evaluated ? 1 : 0) << " "
           << encode_double_bits(cell.area_luts) << " "
           << encode_double_bits(cell.f_max_mhz) << " "
           << encode_double_bits(cell.fps) << "\n";
    }
    os << "end\n";
    return os.str();
}

bool parse_record(const std::string& text, Explorer::Format_grid* grid,
                  std::string* error) {
    Line_reader r(text);
    Explorer::Format_grid out;
    std::string rest;
    if (!r.expect("format-grid", &rest) || rest != "v3") {
        if (!r.failed()) r.fail_value("format-grid version");
        *error = r.error();
        return false;
    }
    if (!read_text(r, "backend", &out.backend)) {
        *error = r.error();
        return false;
    }
    std::size_t count = 0;
    if (!read_size(r, "cells", &count)) {
        *error = r.error();
        return false;
    }
    for (std::size_t i = 0; i < count; ++i) {
        if (!r.expect("cell", &rest)) {
            *error = r.error();
            return false;
        }
        const std::vector<std::string> parts = split(rest, ' ');
        long long window = 0;
        long long depth = 0;
        long long integer_bits = 0;
        long long frac_bits = 0;
        long long range_integer_bits = 0;
        long long tried = 0;
        const auto is_flag = [](const std::string& s) {
            return s == "0" || s == "1";
        };
        Explorer::Format_cell cell;
        if (parts.size() != 14 || !parse_ll_strict(parts[0], &window) ||
            !parse_ll_strict(parts[1], &depth) ||
            !parse_ll_strict(parts[2], &integer_bits) ||
            !parse_ll_strict(parts[3], &frac_bits) ||
            !decode_double_bits(parts[4], &cell.result.psnr_db) ||
            !is_flag(parts[5]) ||
            !decode_double_bits(parts[6], &cell.result.max_abs_value) ||
            !parse_ll_strict(parts[7], &range_integer_bits) ||
            !parse_ll_strict(parts[8], &tried) || !is_flag(parts[9]) ||
            !is_flag(parts[10]) ||
            !decode_double_bits(parts[11], &cell.area_luts) ||
            !decode_double_bits(parts[12], &cell.f_max_mhz) ||
            !decode_double_bits(parts[13], &cell.fps)) {
            r.fail_value("cell");
            *error = r.error();
            return false;
        }
        cell.window = static_cast<int>(window);
        cell.depth = static_cast<int>(depth);
        cell.result.format.integer_bits = static_cast<int>(integer_bits);
        cell.result.format.frac_bits = static_cast<int>(frac_bits);
        cell.result.exact = parts[5] == "1";
        cell.result.range_integer_bits = static_cast<int>(range_integer_bits);
        cell.result.formats_tried = static_cast<int>(tried);
        cell.result.satisfiable = parts[9] == "1";
        cell.evaluated = parts[10] == "1";
        out.cells.push_back(cell);
    }
    if (!r.expect("end", &rest) || !r.done()) {
        *error = r.error();
        return false;
    }
    *grid = std::move(out);
    return true;
}

// --- Synthesis_report -------------------------------------------------------------

std::string serialize_record(const Synthesis_report& report) {
    std::ostringstream os;
    os << "synthesis-report v1\n";
    os << "design";
    if (!report.design_name.empty()) os << " " << report.design_name;
    os << "\n";
    os << "lut_count " << encode_double_bits(report.lut_count) << "\n";
    os << "raw_lut_count " << encode_double_bits(report.raw_lut_count) << "\n";
    os << "ff_count " << encode_double_bits(report.ff_count) << "\n";
    os << "dsp_count " << report.dsp_count << "\n";
    os << "bram_kbits " << encode_double_bits(report.bram_kbits) << "\n";
    os << "f_max_mhz " << encode_double_bits(report.f_max_mhz) << "\n";
    os << "latency_cycles " << report.latency_cycles << "\n";
    os << "register_count " << report.register_count << "\n";
    os << "synthesis_cpu_seconds "
       << encode_double_bits(report.synthesis_cpu_seconds) << "\n";
    os << "fits " << (report.fits ? 1 : 0) << "\n";
    os << "end\n";
    return os.str();
}

bool parse_record(const std::string& text, Synthesis_report* report,
                  std::string* error) {
    Line_reader r(text);
    Synthesis_report out;
    std::string rest;
    const bool ok =
        r.expect("synthesis-report", &rest) && rest == "v1" &&
        read_text(r, "design", &out.design_name) &&
        read_double(r, "lut_count", &out.lut_count) &&
        read_double(r, "raw_lut_count", &out.raw_lut_count) &&
        read_double(r, "ff_count", &out.ff_count) &&
        read_int(r, "dsp_count", &out.dsp_count) &&
        read_double(r, "bram_kbits", &out.bram_kbits) &&
        read_double(r, "f_max_mhz", &out.f_max_mhz) &&
        read_int(r, "latency_cycles", &out.latency_cycles) &&
        read_int(r, "register_count", &out.register_count) &&
        read_double(r, "synthesis_cpu_seconds", &out.synthesis_cpu_seconds) &&
        read_bool(r, "fits", &out.fits) && r.expect("end", &rest) && r.done();
    if (!ok) {
        if (!r.failed()) r.fail_value("synthesis-report version");
        *error = r.error();
        return false;
    }
    *report = std::move(out);
    return true;
}

// --- cache keys -------------------------------------------------------------------

std::string kernel_ir_key(const std::string& kernel_name, Boundary boundary,
                          const Stencil_step& step) {
    std::ostringstream os;
    os << "kernel " << kernel_name << "\n";
    os << "boundary " << to_string(boundary) << "\n";
    for (const std::string& name : step.const_fields()) {
        os << "const " << name << "\n";
    }
    const std::vector<std::string>& fields = step.state_fields();
    for (std::size_t i = 0; i < fields.size(); ++i) {
        os << "state " << fields[i] << " = "
           << to_sexpr(step.pool(), step.update(static_cast<int>(i))) << "\n";
    }
    return os.str();
}

namespace {

// Every option that can change a sweep result, shared by the entry and
// request keys. Thread counts are deliberately absent: results are
// byte-identical at any fan-out width, so a warm cache serves requests
// regardless of how parallel the original run was.
std::string config_key_options(const Sweep_config& config) {
    std::ostringstream os;
    os << "frame " << config.frame_width << "x" << config.frame_height << "\n";
    os << "format " << config.format.integer_bits << "." << config.format.frac_bits
       << "\n";
    os << "space " << config.space.max_window << " " << config.space.max_depth
       << " " << config.space.max_cores_per_sweep << " "
       << encode_double_bits(config.space.pareto_area_cap_luts) << "\n";
    os << "throughput " << encode_double_bits(config.throughput.core_read_ports)
       << " " << encode_double_bits(config.throughput.global_read_ports) << " "
       << encode_double_bits(config.throughput.offchip_write_cost) << " "
       << encode_double_bits(config.throughput.class_switch_cycles) << "\n";
    os << "calibration_windows";
    for (int w : config.calibration_windows) os << " " << w;
    os << "\n";
    os << "with_pareto " << (config.with_pareto ? 1 : 0) << "\n";
    os << "validate " << (config.validate ? 1 : 0) << " "
       << config.validation_frame_width << "x" << config.validation_frame_height
       << " seed " << config.validation_seed << "\n";
    os << "search_formats " << (config.search_formats ? 1 : 0) << " "
       << encode_double_bits(config.format_search.target_psnr_db) << " "
       << encode_double_bits(config.format_search.peak_value) << " "
       << config.format_search.sample_windows << " "
       << config.format_search.max_total_bits << " " << config.format_search.seed
       << " shrink " << (config.format_search.shrink_integer_bits ? 1 : 0)
       << "\n";
    os << "validate_fixed " << (config.validate_fixed ? 1 : 0) << "\n";
    return os.str();
}

}  // namespace

std::string sweep_entry_key(const std::string& ir_key, const Sweep_config& config,
                            const std::string& device, int iterations,
                            const std::string& backend) {
    return cat("sweep-entry-key v3\n", ir_key, "device ", device, "\niterations ",
               iterations, "\nbackend ", backend, "\n",
               config_key_options(config));
}

std::string format_grid_key(const std::string& ir_key, const Sweep_config& config,
                            const std::string& device) {
    // v3: the grid's cells carry full per-format evaluations, which are
    // priced on a device against the modeled frame, throughput parameters
    // and calibration windows — all of it keyed, so a cached grid is never
    // served to a request that would have priced its cells differently.
    std::ostringstream os;
    os << "format-grid-key v3\n" << ir_key;
    os << "device " << device << "\n";
    os << "space " << config.space.max_window << " " << config.space.max_depth
       << "\n";
    os << "content " << config.validation_frame_width << "x"
       << config.validation_frame_height << " seed " << config.validation_seed
       << "\n";
    os << "search " << encode_double_bits(config.format_search.target_psnr_db)
       << " " << encode_double_bits(config.format_search.peak_value) << " "
       << config.format_search.sample_windows << " "
       << config.format_search.max_total_bits << " " << config.format_search.seed
       << " shrink " << (config.format_search.shrink_integer_bits ? 1 : 0)
       << "\n";
    os << "frame " << config.frame_width << "x" << config.frame_height << "\n";
    os << "throughput " << encode_double_bits(config.throughput.core_read_ports)
       << " " << encode_double_bits(config.throughput.global_read_ports) << " "
       << encode_double_bits(config.throughput.offchip_write_cost) << " "
       << encode_double_bits(config.throughput.class_switch_cycles) << "\n";
    os << "calibration_windows";
    for (int w : config.calibration_windows) os << " " << w;
    os << "\n";
    return os.str();
}

std::string synthesis_key_prefix(const std::string& ir_key) {
    return cat("synthesis-key v1\n", ir_key);
}

std::string sweep_request_key(const Sweep_config& config) {
    std::ostringstream os;
    os << "sweep-request v3\n";
    os << "kernels";
    for (const std::string& k : config.kernels) os << " " << k;
    os << "\ndevices";
    for (const std::string& d : config.devices) os << " " << d;
    os << "\niterations";
    for (int n : config.iteration_counts) os << " " << n;
    os << "\nbackends";
    for (const std::string& b : config.backends) os << " " << b;
    os << "\n" << config_key_options(config);
    return os.str();
}

}  // namespace islhls
