// Serialization of cached sweep payloads + content-addressed cache keys.
//
// The sweep service persists three payload types in the result cache:
// per-combination Sweep_entry records, per-kernel format-search grids, and
// individual virtual-synthesis reports. Each has an exact text serializer
// and a strict parser: doubles travel as their 16-hex-digit IEEE-754 bit
// pattern, so parse(serialize(x)) reproduces every field bit for bit and
// serialize(parse(s)) == s — the round-trip identity the cache tests lock
// down. Parsers validate the full line structure and report failure instead
// of throwing, so a record that decodes structurally (cache checksum OK)
// but not semantically (schema drift) degrades to a recompute, never an
// abort.
//
// Cache keys are content-addressed: every key starts from the kernel's IR
// identity (state-field update expressions as s-exprs over the shared pool,
// const fields, boundary policy) and appends every option that affects the
// cached result — never thread counts, which are result-invariant by the
// DSE's determinism contract. Changing any result-affecting input therefore
// changes the key; schema changes bump the leading version token instead of
// reinterpreting old payloads.
#pragma once

#include <string>

#include "core/sweep.hpp"
#include "dse/explorer.hpp"
#include "kernels/kernels.hpp"
#include "symexec/stencil_step.hpp"
#include "synth/synthesizer.hpp"

namespace islhls {

// --- exact payload serializers ---------------------------------------------------
std::string serialize_record(const Sweep_entry& entry);
bool parse_record(const std::string& text, Sweep_entry* entry,
                  std::string* error);

std::string serialize_record(const Explorer::Format_grid& grid);
bool parse_record(const std::string& text, Explorer::Format_grid* grid,
                  std::string* error);

std::string serialize_record(const Synthesis_report& report);
bool parse_record(const std::string& text, Synthesis_report* report,
                  std::string* error);

// --- cache keys ------------------------------------------------------------------
// The kernel's IR identity: name, boundary, const fields and one s-expr per
// state-field update. This is the part of every cache key that pins *what*
// was compiled, independent of any exploration option.
std::string kernel_ir_key(const std::string& kernel_name, Boundary boundary,
                          const Stencil_step& step);

// Key of one sweep combination's Sweep_entry (device, iteration count and
// backend vary per combination; everything else comes from the config). The
// backend is part of the key, so a warm cache never serves one backend's
// entries to a request for another.
std::string sweep_entry_key(const std::string& ir_key, const Sweep_config& config,
                            const std::string& device, int iterations,
                            const std::string& backend);

// Key of one kernel's format-search grid. N-independent, but the grid's
// per-format cell evaluations are priced on a device against the modeled
// frame and throughput parameters, so those are part of the key.
std::string format_grid_key(const std::string& ir_key, const Sweep_config& config,
                            const std::string& device);

// Key prefix for this kernel's virtual-synthesis reports; Cone_library
// appends "window/depth/device/options" per synthesis.
std::string synthesis_key_prefix(const std::string& ir_key);

// Dedup key of a whole request for the batch front-end: two requests with
// equal keys produce byte-identical reports, so the queue runs one of them.
std::string sweep_request_key(const Sweep_config& config);

// Exact double <-> 16-hex-digit bit-pattern helpers (shared with tests).
std::string encode_double_bits(double value);
bool decode_double_bits(const std::string& text, double* value);

}  // namespace islhls
