#include "core/sweep.hpp"

#include <algorithm>

#include "core/service.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

namespace islhls {

void validate_config(const Sweep_config& config) {
    // User-facing configuration errors, not internal invariants.
    if (config.kernels.empty()) {
        throw User_error("sweep needs at least one kernel");
    }
    if (config.devices.empty()) {
        throw User_error("sweep needs at least one device");
    }
    if (config.iteration_counts.empty()) {
        throw User_error("sweep needs at least one iteration count");
    }
    for (int n : config.iteration_counts) {
        if (n < 1) {
            throw User_error(cat("sweep iteration count ", n, " must be >= 1"));
        }
    }
    if (config.frame_width < 1 || config.frame_height < 1) {
        throw User_error(cat("sweep frame ", config.frame_width, "x",
                             config.frame_height, " must be positive"));
    }
    if (config.backends.empty()) {
        throw User_error("sweep needs at least one backend");
    }
    for (std::size_t i = 0; i < config.backends.size(); ++i) {
        const std::string& backend = config.backends[i];
        if (backend != "paper" && backend != "streaming") {
            throw User_error(cat("unknown sweep backend '", backend,
                                 "' (expected paper or streaming)"));
        }
        for (std::size_t j = 0; j < i; ++j) {
            if (config.backends[j] == backend) {
                throw User_error(cat("sweep backend '", backend,
                                     "' listed more than once"));
            }
        }
    }
    if (config.validate_fixed) {
        // The raw-word comparison reconstructs the simulator's words from
        // its from_raw outputs, which is exact only while every raw word
        // fits a double's 53-bit mantissa. Formats beyond that would report
        // phantom LSB errors, so reject them up front (the search side is
        // bounded by max_total_bits the same way).
        const int widest = std::max(config.format.total_bits(),
                                    config.search_formats
                                        ? config.format_search.max_total_bits
                                        : 0);
        if (widest > 53) {
            throw User_error(cat("--validate-fixed needs formats of at most 53 "
                                 "bits (raw words must be exactly representable "
                                 "in double), got ", widest));
        }
    }
}

Sweep_session::Sweep_session(Sweep_config config) : config_(std::move(config)) {
    validate_config(config_);
    service_ = std::make_unique<Sweep_service>();
}

Sweep_session::~Sweep_session() = default;

Sweep_report Sweep_session::run() { return service_->run(config_); }

Cone_library& Sweep_session::library(const std::string& kernel) {
    return service_->library(kernel);
}

std::string report_table(const Sweep_report& report) {
    // The backend, format and fixed-golden columns only appear when some
    // entry carries them, so plain paper-only sweeps keep the classic
    // nine-column layout byte for byte.
    bool any_backend = false;
    bool any_format = false;
    bool any_fixed = false;
    for (const Sweep_entry& e : report.entries) {
        any_backend |= e.backend != "paper";
        any_format |= e.format_searched;
        any_fixed |= e.validated_fixed;
    }
    std::vector<std::string> header = {"kernel", "device", "N"};
    if (any_backend) header.push_back("backend");
    header.insert(header.end(), {"fit", "architecture", "fps", "kLUTs (est)",
                                 "pareto", "golden"});
    if (any_format) {
        header.push_back("format");
        header.push_back("kLUTs@fmt");
        header.push_back("fps@fmt");
        header.push_back("psnr@fmt");
    }
    if (any_fixed) header.push_back("golden(fx)");
    Table table(header);
    for (const Sweep_entry& e : report.entries) {
        const std::string pareto =
            e.pareto_points > 0
                ? cat(e.pareto_front_size, "/", e.pareto_points)
                : std::string("-");
        const std::string golden =
            e.validated ? (e.validation_max_abs_err == 0.0
                               ? std::string("exact")
                               : cat("err ", e.validation_max_abs_err))
                        : std::string("-");
        std::vector<std::string> row = {e.kernel, e.device, cat(e.iterations)};
        if (any_backend) row.push_back(e.backend);
        if (e.fits && e.backend == "streaming") {
            row.insert(row.end(),
                       {"yes", to_string(e.streaming_best.config),
                        format_fixed(e.streaming_best.fps, 1),
                        format_fixed(e.streaming_best.area_luts / 1e3, 1), pareto,
                        golden});
        } else if (e.fits) {
            row.insert(row.end(),
                       {"yes", to_string(e.best.instance),
                        format_fixed(e.best.throughput.fps, 1),
                        format_fixed(e.best.estimated_area_luts / 1e3, 1), pareto,
                        golden});
        } else {
            row.insert(row.end(), {"no", "-", "-", "-", pareto, golden});
        }
        if (any_format) {
            if (e.format_searched && e.format_satisfiable) {
                row.push_back(to_string(e.fixed_format));
                row.push_back(format_fixed(e.searched_area_luts / 1e3, 1));
                row.push_back(format_fixed(e.searched_fps, 1));
                // An exact covering format has no finite PSNR — the flag is
                // rendered, not a sentinel decibel number.
                row.push_back(e.format_exact
                                  ? std::string("exact")
                                  : cat(format_fixed(e.format_psnr_db, 1), " dB"));
            } else if (e.format_searched) {
                row.insert(row.end(), {"unsat", "-", "-", "-"});
            } else {
                row.insert(row.end(), {"-", "-", "-", "-"});
            }
        }
        if (any_fixed) {
            row.push_back(e.validated_fixed
                              ? (e.validation_max_raw_err == 0.0
                                     ? std::string("exact")
                                     : cat("err ", e.validation_max_raw_err, " lsb"))
                              : std::string("-"));
        }
        table.add_row(std::move(row));
    }
    std::string out = table.to_text();
    // Merged cross-backend fronts, one deterministic table per combination.
    for (const Merged_front& front : report.merged_fronts) {
        out += cat("\nmerged pareto front: ", front.kernel, " on ", front.device,
                   ", N=", front.iterations, " (", front.points.size(),
                   " points)\n");
        Table front_table({"backend", "architecture", "kLUTs (est)", "fps"});
        for (const Merged_front::Point& p : front.points) {
            front_table.add_row({p.backend, p.point.config,
                                 format_fixed(p.point.area_luts / 1e3, 1),
                                 format_fixed(p.point.fps, 1)});
        }
        out += front_table.to_text();
    }
    return out;
}

std::string to_string(const Sweep_report& report) {
    std::string out = report_table(report);
    const long long cone_hits = report.cone_lookups - report.cone_builds;
    const long long synth_hits = report.synthesis_lookups - report.synthesis_runs -
                                 report.synthesis_loads;
    out += cat("\ncache: ", report.cone_builds, " cones built, ", cone_hits,
               " cone hits; ", report.synthesis_runs, " syntheses run, ",
               synth_hits, " synthesis hits\n");
    if (report.entry_hits + report.entry_misses + report.grid_hits +
            report.grid_misses + report.synthesis_loads >
        0) {
        out += cat("result cache: ", report.entry_hits, " entry hits, ",
                   report.entry_misses, " entry misses, ", report.entry_stores,
                   " stored; ", report.grid_hits, " grid hits, ",
                   report.grid_misses, " grid misses; ", report.synthesis_loads,
                   " syntheses loaded\n");
    }
    out += cat("virtual synthesis time ",
               format_fixed(report.synthesis_cpu_seconds / 3600.0, 2),
               " tool-hours; sweep wall time ",
               format_fixed(report.wall_seconds, 2), " s\n");
    return out;
}

}  // namespace islhls
