#include "core/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "dse/architecture.hpp"
#include "grid/frame_ops.hpp"
#include "kernels/kernels.hpp"
#include "sim/arch_sim.hpp"
#include "sim/golden.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"
#include "support/text.hpp"
#include "symexec/executor.hpp"
#include "synth/device.hpp"

namespace islhls {

Sweep_session::Sweep_session(Sweep_config config) : config_(std::move(config)) {
    // User-facing configuration errors, not internal invariants.
    if (config_.kernels.empty()) throw Error("sweep needs at least one kernel");
    if (config_.devices.empty()) throw Error("sweep needs at least one device");
    if (config_.iteration_counts.empty()) {
        throw Error("sweep needs at least one iteration count");
    }
    for (int n : config_.iteration_counts) {
        if (n < 1) throw Error(cat("sweep iteration count ", n, " must be >= 1"));
    }
    if (config_.frame_width < 1 || config_.frame_height < 1) {
        throw Error(cat("sweep frame ", config_.frame_width, "x",
                        config_.frame_height, " must be positive"));
    }
}

double Sweep_session::validate_fit(Cone_library& library, const Sweep_entry& entry,
                                   Thread_pool* pool,
                                   Validation_cache& cache) const {
    const Kernel_def& kernel = kernel_by_name(entry.kernel);
    auto it = cache.find({entry.kernel, entry.iterations});
    if (it == cache.end()) {
        Frame_set initial = kernel.make_initial(
            make_synthetic_scene(config_.validation_frame_width,
                                 config_.validation_frame_height,
                                 config_.validation_seed));
        Frame_set golden =
            run_ghost_ir(library.step(), initial, entry.iterations, kernel.boundary,
                         Exec_options{1, 0, 0, pool});
        it = cache.emplace(std::make_pair(entry.kernel, entry.iterations),
                           std::make_pair(std::move(initial), std::move(golden)))
                 .first;
    }
    const Frame_set& initial = it->second.first;
    const Frame_set& golden = it->second.second;
    Arch_sim_options sim_options;
    sim_options.boundary = kernel.boundary;
    const Arch_sim_result sim =
        simulate_architecture(library, entry.best.instance, initial, sim_options);
    double max_err = 0.0;
    for (const std::string& field : kernel.state_fields) {
        max_err = std::max(max_err, max_abs_diff(sim.final_state.field(field),
                                                 golden.field(field)));
    }
    return max_err;
}

Cone_library& Sweep_session::library(const std::string& kernel) {
    auto it = libraries_.find(kernel);
    if (it == libraries_.end()) {
        const Kernel_def& def = kernel_by_name(kernel);
        Stencil_step step = extract_stencil(def.c_source);
        auto built = std::make_unique<Cone_library>(std::move(step), def.name);
        it = libraries_.emplace(kernel, std::move(built)).first;
    }
    return *it->second;
}

Sweep_report Sweep_session::run() {
    const auto start = std::chrono::steady_clock::now();
    Sweep_report report;
    // One pool for the whole session: Explorer candidate fan-outs and the
    // validation runs' row fan-outs all share it.
    std::optional<Thread_pool> pool;
    if (resolve_thread_count(config_.space.threads) > 1) {
        pool.emplace(config_.space.threads);
    }
    Thread_pool* shared_pool = pool ? &*pool : nullptr;
    Validation_cache validation_cache;
    for (const std::string& kernel : config_.kernels) {
        Cone_library& lib = library(kernel);
        for (const std::string& device_name : config_.devices) {
            const Fpga_device& device = device_by_name(device_name);
            for (int iterations : config_.iteration_counts) {
                Evaluator_options evaluator_options;
                evaluator_options.frame_width = config_.frame_width;
                evaluator_options.frame_height = config_.frame_height;
                evaluator_options.format = config_.format;
                evaluator_options.synth.format = config_.format;
                evaluator_options.throughput = config_.throughput;
                evaluator_options.calibration_windows = config_.calibration_windows;

                Space_options space = config_.space;
                space.iterations = iterations;

                Explorer explorer(lib, device, evaluator_options, space, shared_pool);
                Sweep_entry entry;
                entry.kernel = kernel;
                entry.device = device_name;
                entry.iterations = iterations;
                const Explorer::Fit_result fit = explorer.fit_device();
                entry.fits = fit.has_best;
                if (fit.has_best) entry.best = fit.best;
                if (config_.with_pareto) {
                    const Explorer::Pareto_result pareto = explorer.explore_pareto();
                    entry.pareto_points = pareto.points.size();
                    entry.pareto_front_size = pareto.front.size();
                }
                if (config_.validate && entry.fits) {
                    entry.validation_max_abs_err =
                        validate_fit(lib, entry, shared_pool, validation_cache);
                    entry.validated = true;
                }
                report.entries.push_back(std::move(entry));
            }
        }
    }
    // Totals over the distinct session caches — not per occurrence in
    // config_.kernels, which may repeat a name.
    for (const auto& [name, lib] : libraries_) {
        report.cone_builds += lib->cone_builds();
        report.cone_lookups += lib->cone_lookups();
        report.synthesis_runs += lib->synthesis_runs();
        report.synthesis_lookups += lib->synthesis_lookups();
        report.synthesis_cpu_seconds += lib->synthesis_cpu_seconds();
    }
    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return report;
}

std::string to_string(const Sweep_report& report) {
    Table table({"kernel", "device", "N", "fit", "architecture", "fps",
                 "kLUTs (est)", "pareto", "golden"});
    for (const Sweep_entry& e : report.entries) {
        const std::string pareto =
            e.pareto_points > 0
                ? cat(e.pareto_front_size, "/", e.pareto_points)
                : std::string("-");
        const std::string golden =
            e.validated ? (e.validation_max_abs_err == 0.0
                               ? std::string("exact")
                               : cat("err ", e.validation_max_abs_err))
                        : std::string("-");
        if (e.fits) {
            table.add(e.kernel, e.device, e.iterations, "yes",
                      to_string(e.best.instance),
                      format_fixed(e.best.throughput.fps, 1),
                      format_fixed(e.best.estimated_area_luts / 1e3, 1), pareto,
                      golden);
        } else {
            table.add(e.kernel, e.device, e.iterations, "no", "-", "-", "-", pareto,
                      golden);
        }
    }
    std::string out = table.to_text();
    const long long cone_hits = report.cone_lookups - report.cone_builds;
    const long long synth_hits = report.synthesis_lookups - report.synthesis_runs;
    out += cat("\ncache: ", report.cone_builds, " cones built, ", cone_hits,
               " cone hits; ", report.synthesis_runs, " syntheses run, ",
               synth_hits, " synthesis hits\n");
    out += cat("virtual synthesis time ",
               format_fixed(report.synthesis_cpu_seconds / 3600.0, 2),
               " tool-hours; sweep wall time ",
               format_fixed(report.wall_seconds, 2), " s\n");
    return out;
}

}  // namespace islhls
