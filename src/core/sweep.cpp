#include "core/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "dse/architecture.hpp"
#include "grid/frame_ops.hpp"
#include "kernels/kernels.hpp"
#include "sim/arch_sim.hpp"
#include "sim/golden.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"
#include "support/text.hpp"
#include "symexec/executor.hpp"
#include "synth/device.hpp"

namespace islhls {

Sweep_session::Sweep_session(Sweep_config config) : config_(std::move(config)) {
    // User-facing configuration errors, not internal invariants.
    if (config_.kernels.empty()) throw Error("sweep needs at least one kernel");
    if (config_.devices.empty()) throw Error("sweep needs at least one device");
    if (config_.iteration_counts.empty()) {
        throw Error("sweep needs at least one iteration count");
    }
    for (int n : config_.iteration_counts) {
        if (n < 1) throw Error(cat("sweep iteration count ", n, " must be >= 1"));
    }
    if (config_.frame_width < 1 || config_.frame_height < 1) {
        throw Error(cat("sweep frame ", config_.frame_width, "x",
                        config_.frame_height, " must be positive"));
    }
    if (config_.validate_fixed) {
        // The raw-word comparison reconstructs the simulator's words from
        // its from_raw outputs, which is exact only while every raw word
        // fits a double's 53-bit mantissa. Formats beyond that would report
        // phantom LSB errors, so reject them up front (the search side is
        // bounded by max_total_bits the same way).
        const int widest = std::max(config_.format.total_bits(),
                                    config_.search_formats
                                        ? config_.format_search.max_total_bits
                                        : 0);
        if (widest > 53) {
            throw Error(cat("--validate-fixed needs formats of at most 53 bits "
                            "(raw words must be exactly representable in "
                            "double), got ", widest));
        }
    }
}

double Sweep_session::validate_fit_fixed(Cone_library& library,
                                         const Sweep_entry& entry,
                                         const Fixed_format& format,
                                         Thread_pool* pool,
                                         Fixed_validation_cache& cache) const {
    const Kernel_def& kernel = kernel_by_name(entry.kernel);
    const auto key = std::make_tuple(entry.kernel, entry.iterations,
                                     format.integer_bits, format.frac_bits);
    auto it = cache.find(key);
    if (it == cache.end()) {
        Frame_set initial = kernel.make_initial(
            make_synthetic_scene(config_.validation_frame_width,
                                 config_.validation_frame_height,
                                 config_.validation_seed));
        Fixed_frame_result golden =
            run_ghost_ir(library.step(), initial, entry.iterations, kernel.boundary,
                         format, Exec_options{1, 0, 0, pool});
        it = cache.emplace(key, std::make_pair(std::move(initial), std::move(golden)))
                 .first;
    }
    const Frame_set& initial = it->second.first;
    const Fixed_frame_result& golden = it->second.second;
    Arch_sim_options sim_options;
    sim_options.boundary = kernel.boundary;
    sim_options.fixed_point = true;
    sim_options.format = format;
    const Arch_sim_result sim =
        simulate_architecture(library, entry.best.instance, initial, sim_options);
    // The simulator hands fixed-mode results back as from_raw values, which
    // round-trip exactly through to_raw for every format the constructor
    // admits (<= 53 bits) — so the comparison really is raw word against
    // raw word.
    const Raw_quantizer to_raw_word(format);
    std::int64_t max_err = 0;
    for (const std::string& field : kernel.state_fields) {
        const Frame& frame = sim.final_state.field(field);
        const std::size_t index = static_cast<std::size_t>(
            std::find(golden.names.begin(), golden.names.end(), field) -
            golden.names.begin());
        const std::vector<std::int64_t>& expected = golden.raw[index];
        for (std::size_t i = 0; i < expected.size(); ++i) {
            const std::int64_t d = to_raw_word(frame.data()[i]) - expected[i];
            max_err = std::max(max_err, d < 0 ? -d : d);
        }
    }
    return static_cast<double>(max_err);
}

double Sweep_session::validate_fit(Cone_library& library, const Sweep_entry& entry,
                                   Thread_pool* pool,
                                   Validation_cache& cache) const {
    const Kernel_def& kernel = kernel_by_name(entry.kernel);
    auto it = cache.find({entry.kernel, entry.iterations});
    if (it == cache.end()) {
        Frame_set initial = kernel.make_initial(
            make_synthetic_scene(config_.validation_frame_width,
                                 config_.validation_frame_height,
                                 config_.validation_seed));
        Frame_set golden =
            run_ghost_ir(library.step(), initial, entry.iterations, kernel.boundary,
                         Exec_options{1, 0, 0, pool});
        it = cache.emplace(std::make_pair(entry.kernel, entry.iterations),
                           std::make_pair(std::move(initial), std::move(golden)))
                 .first;
    }
    const Frame_set& initial = it->second.first;
    const Frame_set& golden = it->second.second;
    Arch_sim_options sim_options;
    sim_options.boundary = kernel.boundary;
    const Arch_sim_result sim =
        simulate_architecture(library, entry.best.instance, initial, sim_options);
    double max_err = 0.0;
    for (const std::string& field : kernel.state_fields) {
        max_err = std::max(max_err, max_abs_diff(sim.final_state.field(field),
                                                 golden.field(field)));
    }
    return max_err;
}

Cone_library& Sweep_session::library(const std::string& kernel) {
    auto it = libraries_.find(kernel);
    if (it == libraries_.end()) {
        const Kernel_def& def = kernel_by_name(kernel);
        Stencil_step step = extract_stencil(def.c_source);
        auto built = std::make_unique<Cone_library>(std::move(step), def.name);
        it = libraries_.emplace(kernel, std::move(built)).first;
    }
    return *it->second;
}

Sweep_report Sweep_session::run() {
    const auto start = std::chrono::steady_clock::now();
    Sweep_report report;
    // One pool for the whole session: Explorer candidate fan-outs and the
    // validation runs' row fan-outs all share it.
    std::optional<Thread_pool> pool;
    if (resolve_thread_count(config_.space.threads) > 1) {
        pool.emplace(config_.space.threads);
    }
    Thread_pool* shared_pool = pool ? &*pool : nullptr;
    Validation_cache validation_cache;
    Fixed_validation_cache fixed_validation_cache;
    for (const std::string& kernel : config_.kernels) {
        Cone_library& lib = library(kernel);
        for (const std::string& device_name : config_.devices) {
            const Fpga_device& device = device_by_name(device_name);
            for (int iterations : config_.iteration_counts) {
                Evaluator_options evaluator_options;
                evaluator_options.frame_width = config_.frame_width;
                evaluator_options.frame_height = config_.frame_height;
                evaluator_options.format = config_.format;
                evaluator_options.synth.format = config_.format;
                evaluator_options.throughput = config_.throughput;
                evaluator_options.calibration_windows = config_.calibration_windows;

                Space_options space = config_.space;
                space.iterations = iterations;

                Explorer explorer(lib, device, evaluator_options, space, shared_pool);
                Sweep_entry entry;
                entry.kernel = kernel;
                entry.device = device_name;
                entry.iterations = iterations;
                const Explorer::Fit_result fit = explorer.fit_device();
                entry.fits = fit.has_best;
                if (fit.has_best) entry.best = fit.best;
                if (config_.with_pareto) {
                    const Explorer::Pareto_result pareto = explorer.explore_pareto();
                    entry.pareto_points = pareto.points.size();
                    entry.pareto_front_size = pareto.front.size();
                }
                if (config_.search_formats && entry.fits) {
                    // The per-(window, depth) grid is device- and
                    // N-independent: search it once per kernel, share it
                    // across every later combination.
                    auto grid_it = format_grids_.find(kernel);
                    if (grid_it == format_grids_.end()) {
                        const Kernel_def& def = kernel_by_name(kernel);
                        const Frame_set content = def.make_initial(
                            make_synthetic_scene(config_.validation_frame_width,
                                                 config_.validation_frame_height,
                                                 config_.validation_seed));
                        grid_it = format_grids_
                                      .emplace(kernel,
                                               explorer.search_formats(
                                                   content, def.boundary,
                                                   config_.format_search))
                                      .first;
                    }
                    // Narrowest format covering every depth class of the
                    // fit: integer and fraction bits each take the max over
                    // the classes' searched formats, the reported PSNR the
                    // worst (each class achieves at least it at the covering
                    // width — more fraction bits never hurt).
                    const Explorer::Format_grid& grid = grid_it->second;
                    entry.format_searched = true;
                    entry.format_satisfiable = true;
                    entry.format_psnr_db = 0.0;
                    bool first = true;
                    for (int d : entry.best.instance.depth_classes()) {
                        const Format_search_result& cell =
                            grid.at(entry.best.instance.window, d, space.max_depth)
                                .result;
                        entry.format_satisfiable &= cell.satisfiable;
                        entry.fixed_format.integer_bits =
                            first ? cell.format.integer_bits
                                  : std::max(entry.fixed_format.integer_bits,
                                             cell.format.integer_bits);
                        entry.fixed_format.frac_bits =
                            first ? cell.format.frac_bits
                                  : std::max(entry.fixed_format.frac_bits,
                                             cell.format.frac_bits);
                        entry.format_psnr_db = first ? cell.psnr_db
                                                     : std::min(entry.format_psnr_db,
                                                                cell.psnr_db);
                        first = false;
                    }
                    // Re-price the fit's estimated area at the searched
                    // width: a fresh evaluator over the same library, whose
                    // synthesis cache is format-aware, so calibration
                    // syntheses at the new width memoize across N values.
                    // An unsatisfiable search leaves only a failed width
                    // behind — pricing at it would be meaningless, so the
                    // column stays empty instead.
                    if (entry.format_satisfiable) {
                        Evaluator_options priced = evaluator_options;
                        priced.format = entry.fixed_format;
                        priced.synth.format = entry.fixed_format;
                        const Arch_evaluator pricer(lib, device, priced);
                        entry.searched_area_luts =
                            pricer.evaluate(entry.best.instance).estimated_area_luts;
                    }
                }
                if (config_.validate && entry.fits) {
                    entry.validation_max_abs_err =
                        validate_fit(lib, entry, shared_pool, validation_cache);
                    entry.validated = true;
                }
                if (config_.validate_fixed && entry.fits) {
                    const Fixed_format fixed_fmt =
                        entry.format_searched && entry.format_satisfiable
                            ? entry.fixed_format
                            : config_.format;
                    entry.validation_max_raw_err = validate_fit_fixed(
                        lib, entry, fixed_fmt, shared_pool, fixed_validation_cache);
                    entry.validated_fixed = true;
                }
                report.entries.push_back(std::move(entry));
            }
        }
    }
    // Totals over the distinct session caches — not per occurrence in
    // config_.kernels, which may repeat a name.
    for (const auto& [name, lib] : libraries_) {
        report.cone_builds += lib->cone_builds();
        report.cone_lookups += lib->cone_lookups();
        report.synthesis_runs += lib->synthesis_runs();
        report.synthesis_lookups += lib->synthesis_lookups();
        report.synthesis_cpu_seconds += lib->synthesis_cpu_seconds();
    }
    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return report;
}

std::string to_string(const Sweep_report& report) {
    // The format and fixed-golden columns only appear when some entry
    // carries them, so plain sweeps keep the classic nine-column layout.
    bool any_format = false;
    bool any_fixed = false;
    for (const Sweep_entry& e : report.entries) {
        any_format |= e.format_searched;
        any_fixed |= e.validated_fixed;
    }
    std::vector<std::string> header = {"kernel", "device", "N", "fit",
                                       "architecture", "fps", "kLUTs (est)",
                                       "pareto", "golden"};
    if (any_format) {
        header.push_back("format");
        header.push_back("kLUTs@fmt");
    }
    if (any_fixed) header.push_back("golden(fx)");
    Table table(header);
    for (const Sweep_entry& e : report.entries) {
        const std::string pareto =
            e.pareto_points > 0
                ? cat(e.pareto_front_size, "/", e.pareto_points)
                : std::string("-");
        const std::string golden =
            e.validated ? (e.validation_max_abs_err == 0.0
                               ? std::string("exact")
                               : cat("err ", e.validation_max_abs_err))
                        : std::string("-");
        std::vector<std::string> row;
        if (e.fits) {
            row = {e.kernel,
                   e.device,
                   cat(e.iterations),
                   "yes",
                   to_string(e.best.instance),
                   format_fixed(e.best.throughput.fps, 1),
                   format_fixed(e.best.estimated_area_luts / 1e3, 1),
                   pareto,
                   golden};
        } else {
            row = {e.kernel, e.device, cat(e.iterations), "no", "-", "-", "-",
                   pareto, golden};
        }
        if (any_format) {
            if (e.format_searched && e.format_satisfiable) {
                row.push_back(to_string(e.fixed_format));
                row.push_back(format_fixed(e.searched_area_luts / 1e3, 1));
            } else if (e.format_searched) {
                row.push_back("unsat");
                row.push_back("-");
            } else {
                row.push_back("-");
                row.push_back("-");
            }
        }
        if (any_fixed) {
            row.push_back(e.validated_fixed
                              ? (e.validation_max_raw_err == 0.0
                                     ? std::string("exact")
                                     : cat("err ", e.validation_max_raw_err, " lsb"))
                              : std::string("-"));
        }
        table.add_row(std::move(row));
    }
    std::string out = table.to_text();
    const long long cone_hits = report.cone_lookups - report.cone_builds;
    const long long synth_hits = report.synthesis_lookups - report.synthesis_runs;
    out += cat("\ncache: ", report.cone_builds, " cones built, ", cone_hits,
               " cone hits; ", report.synthesis_runs, " syntheses run, ",
               synth_hits, " synthesis hits\n");
    out += cat("virtual synthesis time ",
               format_fixed(report.synthesis_cpu_seconds / 3600.0, 2),
               " tool-hours; sweep wall time ",
               format_fixed(report.wall_seconds, 2), " s\n");
    return out;
}

}  // namespace islhls
