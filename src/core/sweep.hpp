// Batch sweeps: many kernels × devices × iteration counts through one
// session-wide cache.
//
// A Sweep_session keeps one Cone_library per kernel for its whole lifetime,
// so cones are built once per (window, depth) no matter how many devices or
// iteration counts ask for them, and virtual syntheses are shared across
// iteration counts (they are keyed by device inside the library). Each
// combination runs the full device fit — and optionally the Pareto sweep —
// through a parallel Explorer (Space_options::threads). Combinations
// themselves run in their nesting order so the report is deterministic; the
// parallelism lives inside each exploration.
//
// One Thread_pool serves the whole session: every Explorer fans its
// candidates across it, and the optional golden validation runs (functional
// architecture simulation checked against the ghost golden, executed by the
// compiled engine) route their row fan-out through the same pool via
// Exec_options::pool — no per-run() pool construction anywhere in a sweep.
//
// The sweep machinery itself lives in Sweep_service (core/service.hpp),
// which additionally offers a persistent content-addressed result cache and
// a fault-tolerant batch front-end; Sweep_session is the one-shot in-memory
// wrapper that the tests and the classic `islhls sweep` path drive.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "backend/fixed_point.hpp"
#include "dse/explorer.hpp"
#include "dse/streaming_backend.hpp"
#include "estimate/throughput_model.hpp"

namespace islhls {

struct Sweep_config {
    std::vector<std::string> kernels;    // registry names, e.g. "igf"
    std::vector<std::string> devices;    // device names, e.g. "xc6vlx760"
    std::vector<int> iteration_counts;   // N values to sweep
    int frame_width = 1024;
    int frame_height = 768;
    Fixed_format format;
    // `iterations` is overridden per combination; `threads` sets the fan-out
    // width of every exploration in the session.
    Space_options space;
    Throughput_params throughput;
    std::vector<int> calibration_windows = {1, 2};
    // Architecture backends to explore per combination ("paper",
    // "streaming"); each backend contributes its own report entry, and with
    // more than one backend plus `with_pareto`, the per-backend fronts merge
    // into one cross-backend front per combination.
    std::vector<std::string> backends = {"paper"};
    bool with_pareto = false;  // additionally run the Pareto sweep per combo
    // Golden validation of each feasible best fit: simulate the fitted
    // architecture functionally on a small frame and compare against the
    // ghost-zone golden (must agree bit for bit in double mode). The
    // validation frame is deliberately independent of the modeled
    // frame_width/height — simulation cost scales with frame area, and
    // exactness does not depend on it.
    bool validate = false;
    int validation_frame_width = 48;
    int validation_frame_height = 36;
    std::uint64_t validation_seed = 17;
    // Per-architecture fixed-point formats: run the format search over every
    // (window, depth) cell once per (kernel, device) — the grid is
    // N-independent but each cell carries a full evaluation of its canonical
    // design point at the searched format, so the session caches it per
    // device — record the narrowest format covering each feasible fit's
    // depth classes as a report column, and re-run the full evaluation of
    // the fit at that width (area, f_max and fps) instead of pricing at the
    // one global `format`.
    bool search_formats = false;
    Format_search_options format_search;
    // Fixed-mode golden check of each feasible fit: simulate the fitted
    // architecture under Qm.f quantization (the per-architecture format when
    // search_formats found one, else `format`) and compare raw words against
    // the fixed frame engine's ghost golden — must match word for word.
    bool validate_fixed = false;
};

// One Pareto-front point as cached entries carry it: enough to rebuild the
// cross-backend merged front without re-running any exploration, via the
// front-of-fronts identity front(A + B) == front(front(A) + front(B)).
struct Front_point {
    std::string config;  // human-readable candidate identity
    double area_luts = 0.0;
    double seconds_per_frame = 0.0;
    double fps = 0.0;
};

struct Sweep_entry {
    std::string kernel;
    std::string device;
    int iterations = 0;
    std::string backend = "paper";   // Arch_backend that produced this entry
    bool fits = false;               // a feasible device fit exists
    Arch_evaluation best;            // valid when `fits` and backend "paper"
    // Valid when `fits` and backend "streaming": the best-fps feasible
    // streaming configuration.
    Streaming_evaluation streaming_best;
    std::size_t pareto_points = 0;   // filled when with_pareto
    std::size_t pareto_front_size = 0;
    // The backend's own Pareto front, filled when with_pareto; feeds the
    // merged cross-backend front (warm cache included).
    std::vector<Front_point> front_points;
    // Filled when Sweep_config::validate and `fits`: max |sim - golden| over
    // all state fields (0.0 = the architecture reproduces the golden
    // exactly, which double mode must).
    bool validated = false;
    double validation_max_abs_err = 0.0;
    // Filled when Sweep_config::search_formats and `fits`: the narrowest
    // searched format covering every depth class of the best fit (for
    // streaming, the (window 1, fused depth) cell), and the best fit fully
    // re-evaluated at that width — area, f_max and fps all shift with the
    // word width, so the format columns are a true design point.
    bool format_searched = false;
    bool format_satisfiable = false;
    // Every covering depth class reproduced the double reference exactly at
    // the covering format. format_psnr_db is then meaningless (0.0): exact
    // is a flag, never a sentinel decibel value. When false, format_psnr_db
    // is the worst PSNR over the non-exact classes.
    bool format_exact = false;
    Fixed_format fixed_format;
    double format_psnr_db = 0.0;
    double searched_area_luts = 0.0;
    double searched_fps = 0.0;
    double searched_f_max_mhz = 0.0;
    // Filled when Sweep_config::validate_fixed and `fits`: max |sim - golden|
    // in raw-word LSBs over all state fields (0 = the fixed-point
    // architecture reproduces the frame engine's raw words exactly).
    bool validated_fixed = false;
    double validation_max_raw_err = 0.0;
};

// The merged cross-backend Pareto front of one kernel x device x N
// combination; built when with_pareto runs with more than one backend.
struct Merged_front {
    std::string kernel;
    std::string device;
    int iterations = 0;
    struct Point {
        std::string backend;
        Front_point point;
    };
    std::vector<Point> points;  // non-dominated set, ascending area
};

struct Sweep_report {
    std::vector<Sweep_entry> entries;  // kernel-major, then device, N, backend
    // One merged front per combination (empty unless with_pareto ran with
    // more than one backend); derived from the entries' front_points, so a
    // fully warm cache rebuilds them without recomputing anything.
    std::vector<Merged_front> merged_fronts;
    // Shared-cache effectiveness over this run (in-process memoization).
    int cone_builds = 0;
    long long cone_lookups = 0;
    int synthesis_runs = 0;
    long long synthesis_lookups = 0;
    double synthesis_cpu_seconds = 0.0;  // simulated tool time actually spent
    double wall_seconds = 0.0;           // host time for the whole run
    // Persistent result-cache effectiveness over this run (all zero when no
    // cache is attached). A fully warm run shows entry_hits == entries.size()
    // with zero synthesis_runs and zero cone_builds: every combination was
    // served without recomputing anything.
    int entry_hits = 0;
    int entry_misses = 0;
    int entry_stores = 0;
    int grid_hits = 0;
    int grid_misses = 0;
    int synthesis_loads = 0;  // syntheses served from the persistent cache
};

// Validates a sweep configuration, throwing a named user error (kind
// Error_kind::user) for each way a config can be malformed. Shared by
// Sweep_session (at construction) and Sweep_service (per request).
void validate_config(const Sweep_config& config);

class Sweep_service;

class Sweep_session {
public:
    // Throws (kind user) for invalid configs.
    explicit Sweep_session(Sweep_config config);
    ~Sweep_session();

    // Runs every kernel × device × iteration-count combination.
    Sweep_report run();

    // The session cache for one kernel: frontend + symbolic execution happen
    // on first use, after which every device and iteration count shares the
    // same memoized cones and syntheses.
    Cone_library& library(const std::string& kernel);

    const Sweep_config& config() const { return config_; }

private:
    Sweep_config config_;
    // The engine: a private, cache-less (in-memory) sweep service. Long-
    // lived callers wanting the persistent result cache and the batch
    // front-end use core/service.hpp directly.
    std::unique_ptr<Sweep_service> service_;
};

// The deterministic per-combination table alone: byte-identical across
// reruns of the same config (cold or warm cache, any thread count).
std::string report_table(const Sweep_report& report);

// report_table() plus the volatile footer (cache meters, wall time).
std::string to_string(const Sweep_report& report);

}  // namespace islhls
