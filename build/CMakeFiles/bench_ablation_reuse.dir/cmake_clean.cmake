file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reuse.dir/bench/ablation_reuse.cpp.o"
  "CMakeFiles/bench_ablation_reuse.dir/bench/ablation_reuse.cpp.o.d"
  "ablation_reuse"
  "ablation_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
