# Empty dependencies file for bench_ablation_reuse.
# This may be replaced when dependencies are built.
