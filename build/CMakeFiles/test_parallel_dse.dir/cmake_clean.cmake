file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_dse.dir/tests/test_parallel_dse.cpp.o"
  "CMakeFiles/test_parallel_dse.dir/tests/test_parallel_dse.cpp.o.d"
  "test_parallel_dse"
  "test_parallel_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
