# Empty dependencies file for test_parallel_dse.
# This may be replaced when dependencies are built.
