file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_chambolle_pareto.dir/bench/fig09_chambolle_pareto.cpp.o"
  "CMakeFiles/bench_fig09_chambolle_pareto.dir/bench/fig09_chambolle_pareto.cpp.o.d"
  "fig09_chambolle_pareto"
  "fig09_chambolle_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_chambolle_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
