# Empty dependencies file for bench_fig09_chambolle_pareto.
# This may be replaced when dependencies are built.
