# Empty dependencies file for test_cone.
# This may be replaced when dependencies are built.
