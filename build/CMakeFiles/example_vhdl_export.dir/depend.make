# Empty dependencies file for example_vhdl_export.
# This may be replaced when dependencies are built.
