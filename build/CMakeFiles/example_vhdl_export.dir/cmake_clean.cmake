file(REMOVE_RECURSE
  "CMakeFiles/example_vhdl_export.dir/examples/vhdl_export.cpp.o"
  "CMakeFiles/example_vhdl_export.dir/examples/vhdl_export.cpp.o.d"
  "vhdl_export"
  "vhdl_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_vhdl_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
