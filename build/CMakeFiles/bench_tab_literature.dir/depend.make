# Empty dependencies file for bench_tab_literature.
# This may be replaced when dependencies are built.
