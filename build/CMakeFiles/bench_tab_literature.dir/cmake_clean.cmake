file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_literature.dir/bench/tab_literature.cpp.o"
  "CMakeFiles/bench_tab_literature.dir/bench/tab_literature.cpp.o.d"
  "tab_literature"
  "tab_literature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_literature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
