# Empty dependencies file for test_support_text.
# This may be replaced when dependencies are built.
