file(REMOVE_RECURSE
  "CMakeFiles/test_support_text.dir/tests/test_support_text.cpp.o"
  "CMakeFiles/test_support_text.dir/tests/test_support_text.cpp.o.d"
  "test_support_text"
  "test_support_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
