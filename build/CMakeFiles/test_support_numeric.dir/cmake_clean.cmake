file(REMOVE_RECURSE
  "CMakeFiles/test_support_numeric.dir/tests/test_support_numeric.cpp.o"
  "CMakeFiles/test_support_numeric.dir/tests/test_support_numeric.cpp.o.d"
  "test_support_numeric"
  "test_support_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
