# Empty dependencies file for test_support_numeric.
# This may be replaced when dependencies are built.
