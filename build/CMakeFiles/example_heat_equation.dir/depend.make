# Empty dependencies file for example_heat_equation.
# This may be replaced when dependencies are built.
