file(REMOVE_RECURSE
  "CMakeFiles/example_heat_equation.dir/examples/heat_equation.cpp.o"
  "CMakeFiles/example_heat_equation.dir/examples/heat_equation.cpp.o.d"
  "heat_equation"
  "heat_equation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_heat_equation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
