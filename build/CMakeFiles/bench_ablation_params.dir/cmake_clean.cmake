file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_params.dir/bench/ablation_params.cpp.o"
  "CMakeFiles/bench_ablation_params.dir/bench/ablation_params.cpp.o.d"
  "ablation_params"
  "ablation_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
