# Empty dependencies file for bench_fig07_igf_throughput.
# This may be replaced when dependencies are built.
