file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_igf_throughput.dir/bench/fig07_igf_throughput.cpp.o"
  "CMakeFiles/bench_fig07_igf_throughput.dir/bench/fig07_igf_throughput.cpp.o.d"
  "fig07_igf_throughput"
  "fig07_igf_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_igf_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
