file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_chambolle_throughput.dir/bench/fig10_chambolle_throughput.cpp.o"
  "CMakeFiles/bench_fig10_chambolle_throughput.dir/bench/fig10_chambolle_throughput.cpp.o.d"
  "fig10_chambolle_throughput"
  "fig10_chambolle_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_chambolle_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
