file(REMOVE_RECURSE
  "CMakeFiles/test_grid_ops_io.dir/tests/test_grid_ops_io.cpp.o"
  "CMakeFiles/test_grid_ops_io.dir/tests/test_grid_ops_io.cpp.o.d"
  "test_grid_ops_io"
  "test_grid_ops_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_ops_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
