# Empty dependencies file for test_grid_ops_io.
# This may be replaced when dependencies are built.
