# Empty dependencies file for bench_micro_dse_parallel.
# This may be replaced when dependencies are built.
