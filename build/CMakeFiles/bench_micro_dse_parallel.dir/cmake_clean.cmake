file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_dse_parallel.dir/bench/micro_dse_parallel.cpp.o"
  "CMakeFiles/bench_micro_dse_parallel.dir/bench/micro_dse_parallel.cpp.o.d"
  "micro_dse_parallel"
  "micro_dse_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_dse_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
