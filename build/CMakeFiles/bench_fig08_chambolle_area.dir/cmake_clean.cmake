file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_chambolle_area.dir/bench/fig08_chambolle_area.cpp.o"
  "CMakeFiles/bench_fig08_chambolle_area.dir/bench/fig08_chambolle_area.cpp.o.d"
  "fig08_chambolle_area"
  "fig08_chambolle_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_chambolle_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
