# Empty dependencies file for bench_fig08_chambolle_area.
# This may be replaced when dependencies are built.
