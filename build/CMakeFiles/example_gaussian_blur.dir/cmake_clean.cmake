file(REMOVE_RECURSE
  "CMakeFiles/example_gaussian_blur.dir/examples/gaussian_blur.cpp.o"
  "CMakeFiles/example_gaussian_blur.dir/examples/gaussian_blur.cpp.o.d"
  "gaussian_blur"
  "gaussian_blur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gaussian_blur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
