# Empty dependencies file for example_gaussian_blur.
# This may be replaced when dependencies are built.
