file(REMOVE_RECURSE
  "CMakeFiles/test_frontend_parser.dir/tests/test_frontend_parser.cpp.o"
  "CMakeFiles/test_frontend_parser.dir/tests/test_frontend_parser.cpp.o.d"
  "test_frontend_parser"
  "test_frontend_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frontend_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
