# Empty dependencies file for test_frontend_parser.
# This may be replaced when dependencies are built.
