file(REMOVE_RECURSE
  "CMakeFiles/test_ir_analysis_program.dir/tests/test_ir_analysis_program.cpp.o"
  "CMakeFiles/test_ir_analysis_program.dir/tests/test_ir_analysis_program.cpp.o.d"
  "test_ir_analysis_program"
  "test_ir_analysis_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_analysis_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
