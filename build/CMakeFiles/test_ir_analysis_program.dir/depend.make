# Empty dependencies file for test_ir_analysis_program.
# This may be replaced when dependencies are built.
