# Empty dependencies file for bench_fig06_igf_pareto.
# This may be replaced when dependencies are built.
