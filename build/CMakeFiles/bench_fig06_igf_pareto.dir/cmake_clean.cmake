file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_igf_pareto.dir/bench/fig06_igf_pareto.cpp.o"
  "CMakeFiles/bench_fig06_igf_pareto.dir/bench/fig06_igf_pareto.cpp.o.d"
  "fig06_igf_pareto"
  "fig06_igf_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_igf_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
