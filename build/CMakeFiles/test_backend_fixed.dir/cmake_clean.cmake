file(REMOVE_RECURSE
  "CMakeFiles/test_backend_fixed.dir/tests/test_backend_fixed.cpp.o"
  "CMakeFiles/test_backend_fixed.dir/tests/test_backend_fixed.cpp.o.d"
  "test_backend_fixed"
  "test_backend_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
