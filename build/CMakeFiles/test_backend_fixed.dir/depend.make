# Empty dependencies file for test_backend_fixed.
# This may be replaced when dependencies are built.
