# Empty dependencies file for test_format_search.
# This may be replaced when dependencies are built.
