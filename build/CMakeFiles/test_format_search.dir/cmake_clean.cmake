file(REMOVE_RECURSE
  "CMakeFiles/test_format_search.dir/tests/test_format_search.cpp.o"
  "CMakeFiles/test_format_search.dir/tests/test_format_search.cpp.o.d"
  "test_format_search"
  "test_format_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_format_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
