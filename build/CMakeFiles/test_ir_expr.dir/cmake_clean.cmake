file(REMOVE_RECURSE
  "CMakeFiles/test_ir_expr.dir/tests/test_ir_expr.cpp.o"
  "CMakeFiles/test_ir_expr.dir/tests/test_ir_expr.cpp.o.d"
  "test_ir_expr"
  "test_ir_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
