# Empty dependencies file for test_ir_expr.
# This may be replaced when dependencies are built.
