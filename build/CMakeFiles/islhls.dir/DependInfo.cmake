
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backend/fixed_point.cpp" "CMakeFiles/islhls.dir/src/backend/fixed_point.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/backend/fixed_point.cpp.o.d"
  "/root/repo/src/backend/vhdl.cpp" "CMakeFiles/islhls.dir/src/backend/vhdl.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/backend/vhdl.cpp.o.d"
  "/root/repo/src/backend/vhdl_toplevel.cpp" "CMakeFiles/islhls.dir/src/backend/vhdl_toplevel.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/backend/vhdl_toplevel.cpp.o.d"
  "/root/repo/src/baseline/frame_buffer.cpp" "CMakeFiles/islhls.dir/src/baseline/frame_buffer.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/baseline/frame_buffer.cpp.o.d"
  "/root/repo/src/baseline/generic_hls.cpp" "CMakeFiles/islhls.dir/src/baseline/generic_hls.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/baseline/generic_hls.cpp.o.d"
  "/root/repo/src/baseline/literature.cpp" "CMakeFiles/islhls.dir/src/baseline/literature.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/baseline/literature.cpp.o.d"
  "/root/repo/src/cone/cone.cpp" "CMakeFiles/islhls.dir/src/cone/cone.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/cone/cone.cpp.o.d"
  "/root/repo/src/core/flow.cpp" "CMakeFiles/islhls.dir/src/core/flow.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/core/flow.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "CMakeFiles/islhls.dir/src/core/sweep.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/core/sweep.cpp.o.d"
  "/root/repo/src/dse/architecture.cpp" "CMakeFiles/islhls.dir/src/dse/architecture.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/dse/architecture.cpp.o.d"
  "/root/repo/src/dse/cone_library.cpp" "CMakeFiles/islhls.dir/src/dse/cone_library.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/dse/cone_library.cpp.o.d"
  "/root/repo/src/dse/evaluator.cpp" "CMakeFiles/islhls.dir/src/dse/evaluator.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/dse/evaluator.cpp.o.d"
  "/root/repo/src/dse/explorer.cpp" "CMakeFiles/islhls.dir/src/dse/explorer.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/dse/explorer.cpp.o.d"
  "/root/repo/src/dse/pareto.cpp" "CMakeFiles/islhls.dir/src/dse/pareto.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/dse/pareto.cpp.o.d"
  "/root/repo/src/estimate/area_model.cpp" "CMakeFiles/islhls.dir/src/estimate/area_model.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/estimate/area_model.cpp.o.d"
  "/root/repo/src/estimate/format_search.cpp" "CMakeFiles/islhls.dir/src/estimate/format_search.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/estimate/format_search.cpp.o.d"
  "/root/repo/src/estimate/memory_model.cpp" "CMakeFiles/islhls.dir/src/estimate/memory_model.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/estimate/memory_model.cpp.o.d"
  "/root/repo/src/estimate/throughput_model.cpp" "CMakeFiles/islhls.dir/src/estimate/throughput_model.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/estimate/throughput_model.cpp.o.d"
  "/root/repo/src/frontend/lexer.cpp" "CMakeFiles/islhls.dir/src/frontend/lexer.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/frontend/lexer.cpp.o.d"
  "/root/repo/src/frontend/parser.cpp" "CMakeFiles/islhls.dir/src/frontend/parser.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/frontend/parser.cpp.o.d"
  "/root/repo/src/frontend/sema.cpp" "CMakeFiles/islhls.dir/src/frontend/sema.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/frontend/sema.cpp.o.d"
  "/root/repo/src/grid/frame.cpp" "CMakeFiles/islhls.dir/src/grid/frame.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/grid/frame.cpp.o.d"
  "/root/repo/src/grid/frame_io.cpp" "CMakeFiles/islhls.dir/src/grid/frame_io.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/grid/frame_io.cpp.o.d"
  "/root/repo/src/grid/frame_ops.cpp" "CMakeFiles/islhls.dir/src/grid/frame_ops.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/grid/frame_ops.cpp.o.d"
  "/root/repo/src/grid/frame_set.cpp" "CMakeFiles/islhls.dir/src/grid/frame_set.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/grid/frame_set.cpp.o.d"
  "/root/repo/src/grid/tile.cpp" "CMakeFiles/islhls.dir/src/grid/tile.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/grid/tile.cpp.o.d"
  "/root/repo/src/ir/analysis.cpp" "CMakeFiles/islhls.dir/src/ir/analysis.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/ir/analysis.cpp.o.d"
  "/root/repo/src/ir/eval.cpp" "CMakeFiles/islhls.dir/src/ir/eval.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/ir/eval.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "CMakeFiles/islhls.dir/src/ir/expr.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/ir/expr.cpp.o.d"
  "/root/repo/src/ir/print.cpp" "CMakeFiles/islhls.dir/src/ir/print.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/ir/print.cpp.o.d"
  "/root/repo/src/ir/program.cpp" "CMakeFiles/islhls.dir/src/ir/program.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/ir/program.cpp.o.d"
  "/root/repo/src/kernels/kernels.cpp" "CMakeFiles/islhls.dir/src/kernels/kernels.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/kernels/kernels.cpp.o.d"
  "/root/repo/src/sim/arch_sim.cpp" "CMakeFiles/islhls.dir/src/sim/arch_sim.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/sim/arch_sim.cpp.o.d"
  "/root/repo/src/sim/fixed_exec.cpp" "CMakeFiles/islhls.dir/src/sim/fixed_exec.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/sim/fixed_exec.cpp.o.d"
  "/root/repo/src/sim/golden.cpp" "CMakeFiles/islhls.dir/src/sim/golden.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/sim/golden.cpp.o.d"
  "/root/repo/src/support/log.cpp" "CMakeFiles/islhls.dir/src/support/log.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/support/log.cpp.o.d"
  "/root/repo/src/support/numeric.cpp" "CMakeFiles/islhls.dir/src/support/numeric.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/support/numeric.cpp.o.d"
  "/root/repo/src/support/parallel.cpp" "CMakeFiles/islhls.dir/src/support/parallel.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/support/parallel.cpp.o.d"
  "/root/repo/src/support/prng.cpp" "CMakeFiles/islhls.dir/src/support/prng.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/support/prng.cpp.o.d"
  "/root/repo/src/support/table.cpp" "CMakeFiles/islhls.dir/src/support/table.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/support/table.cpp.o.d"
  "/root/repo/src/support/text.cpp" "CMakeFiles/islhls.dir/src/support/text.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/support/text.cpp.o.d"
  "/root/repo/src/symexec/executor.cpp" "CMakeFiles/islhls.dir/src/symexec/executor.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/symexec/executor.cpp.o.d"
  "/root/repo/src/symexec/stencil_step.cpp" "CMakeFiles/islhls.dir/src/symexec/stencil_step.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/symexec/stencil_step.cpp.o.d"
  "/root/repo/src/synth/cost_model.cpp" "CMakeFiles/islhls.dir/src/synth/cost_model.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/synth/cost_model.cpp.o.d"
  "/root/repo/src/synth/device.cpp" "CMakeFiles/islhls.dir/src/synth/device.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/synth/device.cpp.o.d"
  "/root/repo/src/synth/synthesizer.cpp" "CMakeFiles/islhls.dir/src/synth/synthesizer.cpp.o" "gcc" "CMakeFiles/islhls.dir/src/synth/synthesizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
