file(REMOVE_RECURSE
  "libislhls.a"
)
