# Empty dependencies file for islhls.
# This may be replaced when dependencies are built.
