# Empty dependencies file for test_model_vs_sim.
# This may be replaced when dependencies are built.
