file(REMOVE_RECURSE
  "CMakeFiles/test_model_vs_sim.dir/tests/test_model_vs_sim.cpp.o"
  "CMakeFiles/test_model_vs_sim.dir/tests/test_model_vs_sim.cpp.o.d"
  "test_model_vs_sim"
  "test_model_vs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
