# Empty dependencies file for test_vhdl_toplevel.
# This may be replaced when dependencies are built.
