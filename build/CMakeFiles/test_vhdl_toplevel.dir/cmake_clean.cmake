file(REMOVE_RECURSE
  "CMakeFiles/test_vhdl_toplevel.dir/tests/test_vhdl_toplevel.cpp.o"
  "CMakeFiles/test_vhdl_toplevel.dir/tests/test_vhdl_toplevel.cpp.o.d"
  "test_vhdl_toplevel"
  "test_vhdl_toplevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vhdl_toplevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
