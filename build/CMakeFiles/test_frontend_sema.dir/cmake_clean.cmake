file(REMOVE_RECURSE
  "CMakeFiles/test_frontend_sema.dir/tests/test_frontend_sema.cpp.o"
  "CMakeFiles/test_frontend_sema.dir/tests/test_frontend_sema.cpp.o.d"
  "test_frontend_sema"
  "test_frontend_sema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frontend_sema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
