# Empty dependencies file for test_frontend_sema.
# This may be replaced when dependencies are built.
