file(REMOVE_RECURSE
  "CMakeFiles/islhls_cli.dir/tools/islhls.cpp.o"
  "CMakeFiles/islhls_cli.dir/tools/islhls.cpp.o.d"
  "islhls"
  "islhls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/islhls_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
