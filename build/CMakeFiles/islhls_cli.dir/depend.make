# Empty dependencies file for islhls_cli.
# This may be replaced when dependencies are built.
