# Empty dependencies file for test_backend_vhdl.
# This may be replaced when dependencies are built.
