file(REMOVE_RECURSE
  "CMakeFiles/test_backend_vhdl.dir/tests/test_backend_vhdl.cpp.o"
  "CMakeFiles/test_backend_vhdl.dir/tests/test_backend_vhdl.cpp.o.d"
  "test_backend_vhdl"
  "test_backend_vhdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend_vhdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
