# Empty dependencies file for bench_tab_hls_comparison.
# This may be replaced when dependencies are built.
