file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_hls_comparison.dir/bench/tab_hls_comparison.cpp.o"
  "CMakeFiles/bench_tab_hls_comparison.dir/bench/tab_hls_comparison.cpp.o.d"
  "tab_hls_comparison"
  "tab_hls_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_hls_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
