# Empty dependencies file for test_grid_frame.
# This may be replaced when dependencies are built.
