file(REMOVE_RECURSE
  "CMakeFiles/test_grid_frame.dir/tests/test_grid_frame.cpp.o"
  "CMakeFiles/test_grid_frame.dir/tests/test_grid_frame.cpp.o.d"
  "test_grid_frame"
  "test_grid_frame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
