# Empty dependencies file for example_chambolle_denoise.
# This may be replaced when dependencies are built.
