file(REMOVE_RECURSE
  "CMakeFiles/example_chambolle_denoise.dir/examples/chambolle_denoise.cpp.o"
  "CMakeFiles/example_chambolle_denoise.dir/examples/chambolle_denoise.cpp.o.d"
  "chambolle_denoise"
  "chambolle_denoise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_chambolle_denoise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
