file(REMOVE_RECURSE
  "CMakeFiles/test_symexec.dir/tests/test_symexec.cpp.o"
  "CMakeFiles/test_symexec.dir/tests/test_symexec.cpp.o.d"
  "test_symexec"
  "test_symexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
