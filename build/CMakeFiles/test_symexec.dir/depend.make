# Empty dependencies file for test_symexec.
# This may be replaced when dependencies are built.
