file(REMOVE_RECURSE
  "CMakeFiles/test_cross_sweeps.dir/tests/test_cross_sweeps.cpp.o"
  "CMakeFiles/test_cross_sweeps.dir/tests/test_cross_sweeps.cpp.o.d"
  "test_cross_sweeps"
  "test_cross_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
