# Empty dependencies file for test_cross_sweeps.
# This may be replaced when dependencies are built.
