# Empty dependencies file for test_frontend_lexer.
# This may be replaced when dependencies are built.
