file(REMOVE_RECURSE
  "CMakeFiles/test_frontend_lexer.dir/tests/test_frontend_lexer.cpp.o"
  "CMakeFiles/test_frontend_lexer.dir/tests/test_frontend_lexer.cpp.o.d"
  "test_frontend_lexer"
  "test_frontend_lexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frontend_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
