# Empty dependencies file for test_frontend_fuzz.
# This may be replaced when dependencies are built.
