file(REMOVE_RECURSE
  "CMakeFiles/test_frontend_fuzz.dir/tests/test_frontend_fuzz.cpp.o"
  "CMakeFiles/test_frontend_fuzz.dir/tests/test_frontend_fuzz.cpp.o.d"
  "test_frontend_fuzz"
  "test_frontend_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frontend_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
