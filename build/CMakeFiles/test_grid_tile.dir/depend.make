# Empty dependencies file for test_grid_tile.
# This may be replaced when dependencies are built.
