file(REMOVE_RECURSE
  "CMakeFiles/test_grid_tile.dir/tests/test_grid_tile.cpp.o"
  "CMakeFiles/test_grid_tile.dir/tests/test_grid_tile.cpp.o.d"
  "test_grid_tile"
  "test_grid_tile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_tile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
