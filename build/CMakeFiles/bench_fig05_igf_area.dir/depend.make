# Empty dependencies file for bench_fig05_igf_area.
# This may be replaced when dependencies are built.
