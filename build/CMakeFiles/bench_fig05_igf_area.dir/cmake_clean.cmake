file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_igf_area.dir/bench/fig05_igf_area.cpp.o"
  "CMakeFiles/bench_fig05_igf_area.dir/bench/fig05_igf_area.cpp.o.d"
  "fig05_igf_area"
  "fig05_igf_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_igf_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
