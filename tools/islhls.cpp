// islhls — command-line driver for the ISL HLS flow.
//
// Usage:
//   islhls <kernel.c> [options]
//   islhls sweep --kernels A,B [sweep options]
//   islhls serve --requests FILE [service options]
//   islhls cache --cache-dir DIR --verify|--gc
//
// Options:
//   --iterations N      ISL iteration count (default 10)
//   --frame WxH         frame size (default 1024x768)
//   --device NAME       target FPGA (default xc6vlx760; see --list-devices)
//   --format Qm.f       fixed-point format (default Q10.6)
//   --threads N         DSE fan-out threads (default 1; 0 = all cores)
//   --describe          print the dependency analysis and exit
//   --pareto            print the Pareto set (default action)
//   --fit               print the best design for the device
//   --emit-vhdl DIR     write support package + cone + top-level VHDL for
//                       the best device fit into DIR
//   --list-kernels      list built-in kernels (pass builtin:NAME as input)
//   --list-devices      list known devices
//
// The `sweep` subcommand batches many kernels × devices × iteration counts
// through one shared cone/synthesis cache (see core/sweep.hpp):
//   --kernels A,B|all     built-in kernels to sweep (required)
//   --devices A,B|all     target FPGAs (default xc6vlx760)
//   --iterations N1,N2    iteration counts (default 10)
//   --frame WxH, --format Qm.f, --threads N   as above
//   --backend B           architecture backends: paper (default), streaming,
//                         or all — every combination runs once per backend,
//                         and with --pareto plus several backends the report
//                         adds one merged cross-backend Pareto front each
//   --pareto              additionally run the Pareto sweep per combination
//   --validate            golden-check each feasible fit against the simulator
//   --search-formats      per-(window, depth) fixed-point format search with
//                         integer-bit shrink; each fit reports its covering
//                         format plus area, fps and PSNR (or "exact")
//                         re-evaluated at that width
//   --psnr DB             format search accuracy target (default 50)
//   --validate-fixed      fixed-mode golden check against the integer frame
//                         engine (raw words must match exactly)
//   --cache-dir DIR       persistent result cache (created on first use): a
//                         warm cache serves repeats without recomputing
//
// The `serve` subcommand runs a batch of sweep requests from a file through
// the fault-tolerant sweep service (core/service.hpp): identical requests
// run once, each gets a deadline + transient-fault retries, and one bad
// request never takes down the batch (see README for the file format).
//
// Exit codes follow the error taxonomy: 0 ok, 2 user error, 3 I/O fault,
// 4 corrupt data, 5 timeout, 70 internal error.
//
// Examples:
//   islhls my_stencil.c --iterations 8 --fit
//   islhls builtin:chambolle --device xc7vx485t --emit-vhdl out/
//   islhls sweep --kernels igf,chambolle --devices all --iterations 4,10 --threads 0
//   islhls sweep --kernels all --cache-dir .islhls-cache
//   islhls serve --requests requests.txt --cache-dir .islhls-cache
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>

#include "backend/vhdl_toplevel.hpp"
#include "core/flow.hpp"
#include "core/service.hpp"
#include "core/sweep.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

namespace {

using namespace islhls;

[[noreturn]] void usage(int code) {
    std::cout <<
        R"(usage: islhls <kernel.c | builtin:NAME> [options]
       islhls sweep --kernels A,B|all [sweep options]
       islhls serve --requests FILE [service options]
       islhls cache --cache-dir DIR --verify|--gc
  --iterations N    ISL iteration count (default 10)
  --frame WxH       frame size (default 1024x768)
  --device NAME     target FPGA (default xc6vlx760)
  --format Qm.f     fixed-point format (default Q10.6)
  --threads N       DSE fan-out threads (default 1; 0 = all cores)
  --describe        print the dependency analysis
  --pareto          print the Pareto set (default)
  --fit             print the best design for the device
  --emit-vhdl DIR   write VHDL for the best fit into DIR
  --list-kernels    list built-in kernels
  --list-devices    list known devices
sweep options:
  --kernels A,B|all    built-in kernels to sweep (required)
  --devices A,B|all    target FPGAs (default xc6vlx760)
  --iterations N1,N2   iteration counts (default 10)
  --frame WxH, --format Qm.f, --threads N   as above
  --backend B          architecture backends: paper (default), streaming, or
                       all; with --pareto and more than one backend, each
                       combination also prints the merged cross-backend front
  --pareto             additionally run the Pareto sweep per combination
  --validate           golden-check each feasible fit (simulated architecture
                       vs ghost golden on a small frame; must be exact)
  --search-formats     search the narrowest passing Qm.f per (window, depth)
                       (shrinking integer bits below the range floor when the
                       outputs stay exact); each fit reports its covering
                       format and the full evaluation at that width — area,
                       fps, f_max and PSNR (or "exact")
  --psnr DB            format search accuracy target (default 50)
  --validate-fixed     fixed-point golden check: simulate each feasible fit
                       under quantization vs the fixed frame engine (raw words
                       must match exactly)
  --cache-dir DIR      persistent result cache (created on first use)
service options (serve):
  --requests FILE      request file: `request` ... `end` blocks of sweep
                       options without the leading --, one per line
  --cache-dir DIR      persistent result cache shared by all requests
  --deadline-ms N      per-attempt deadline per request (default: none)
  --retries N          max attempts per request on transient faults (default 3)
cache options:
  --cache-dir DIR      the cache to inspect (required)
  --verify             validate every record; exit 4 if any is corrupt
  --gc                 verify, then remove corrupt records, quarantined
                       copies and orphaned temp files
  --max-bytes N        with --gc: additionally evict valid records, oldest
                       write first, until the survivors fit N bytes
exit codes: 0 ok, 2 user error, 3 I/O fault, 4 corrupt data, 5 timeout,
70 internal error
)";
    std::exit(code);
}

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw Io_error(cat("cannot open '", path, "'"));
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// std::stoi with option-parse errors turned into named user errors.
int parse_int(const std::string& text, const std::string& what) {
    try {
        std::size_t consumed = 0;
        const int value = std::stoi(text, &consumed);
        if (consumed != text.size()) throw Error("");
        return value;
    } catch (const std::exception&) {
        throw User_error(cat("bad ", what, " '", text, "', expected an integer"));
    }
}

Fixed_format parse_format(const std::string& text) {
    // "Q10.6" -> {10, 6}
    if (text.size() < 4 || (text[0] != 'Q' && text[0] != 'q')) {
        throw User_error(cat("bad format '", text, "', expected Qm.f"));
    }
    const auto dot = text.find('.');
    if (dot == std::string::npos) {
        throw User_error(cat("bad format '", text, "', expected Qm.f"));
    }
    Fixed_format fmt;
    fmt.integer_bits = parse_int(text.substr(1, dot - 1), "format");
    fmt.frac_bits = parse_int(text.substr(dot + 1), "format");
    if (fmt.total_bits() < 2 || fmt.total_bits() > 62) {
        throw User_error(cat("format '", text, "' out of the 2..62 bit range"));
    }
    return fmt;
}

void print_pareto(Hls_flow& flow) {
    const auto result = flow.pareto();
    std::cout << "evaluated " << result.points.size() << " design points\n";
    Table table({"kLUTs (est)", "ms/frame", "fps", "architecture"});
    for (std::size_t idx : result.front) {
        const auto& p = result.points[idx];
        table.add(format_fixed(p.estimated_area_luts / 1e3, 1),
                  format_fixed(p.throughput.seconds_per_frame * 1e3, 3),
                  format_fixed(p.throughput.fps, 1), to_string(p.instance));
    }
    std::cout << table;
}

void print_fit(Hls_flow& flow) {
    const auto fit = flow.device_fit();
    if (!fit.has_best) {
        std::cout << "no feasible design fits " << flow.device().name << "\n";
        return;
    }
    const auto& best = fit.best;
    std::cout << "best design for " << flow.device().name << ":\n  "
              << to_string(best.instance) << "\n  "
              << format_fixed(best.throughput.fps, 1) << " fps ("
              << format_fixed(best.throughput.seconds_per_frame * 1e3, 2)
              << " ms/frame), bottleneck: " << best.throughput.bottleneck << "\n  "
              << format_fixed(best.estimated_area_luts / 1e3, 1)
              << " kLUTs estimated (" << format_fixed(best.actual_area_luts / 1e3, 1)
              << " actual), f_max " << format_fixed(best.f_max_mhz, 1) << " MHz\n  "
              << "on-chip buffers " << format_fixed(best.memory.total_kbits, 1)
              << " kbit (" << format_fixed(best.memory.saving_factor, 0)
              << "x below whole-frame buffering)\n";
}

void emit_vhdl(Hls_flow& flow, const std::string& dir) {
    namespace fs = std::filesystem;
    fs::create_directories(dir);
    const auto fit = flow.device_fit();
    if (!fit.has_best) {
        std::cout << "no feasible design; nothing emitted\n";
        return;
    }
    const Arch_instance& instance = fit.best.instance;
    Vhdl_options options;
    options.format = flow.options().format;

    const fs::path base(dir);
    {
        std::ofstream f(base / "islhls_support.vhdl");
        f << emit_support_package(options);
    }
    std::vector<std::string> files{"islhls_support.vhdl"};
    for (int d : instance.depth_classes()) {
        const Cone& cone = flow.cones().cone(instance.window, d);
        const std::string name =
            cone_entity_name(flow.kernel_name(), cone.spec(), options) + ".vhdl";
        std::ofstream f(base / name);
        f << emit_cone(cone, flow.kernel_name(), options);
        files.push_back(name);
    }
    {
        const std::string name =
            toplevel_entity_name(flow.kernel_name(), instance, options) + ".vhdl";
        std::ofstream f(base / name);
        f << emit_architecture_toplevel(flow.cones(), instance, options);
        files.push_back(name);
    }
    std::cout << "wrote " << files.size() << " files to " << dir << ":\n";
    for (const auto& f : files) std::cout << "  " << f << "\n";
}

std::vector<std::string> parse_name_list(const std::string& value) {
    std::vector<std::string> names;
    for (const std::string& part : split(value, ',')) {
        const std::string name = trim(part);
        if (!name.empty()) names.push_back(name);
    }
    if (names.empty()) throw User_error(cat("empty list '", value, "'"));
    return names;
}

// One sweep option applied to a config. `name` is the bare option name (no
// leading --); `value` produces its argument on demand and may throw a named
// user error when none is available. Returns false for unknown names, so the
// CLI and the request-file parser share one option table.
bool apply_sweep_option(Sweep_config& config, const std::string& name,
                        const std::function<std::string()>& value) {
    if (name == "kernels") {
        const std::string v = value();
        config.kernels = v == "all" ? kernel_names() : parse_name_list(v);
    } else if (name == "devices") {
        const std::string v = value();
        if (v == "all") {
            config.devices.clear();
            for (const Fpga_device& d : all_devices()) config.devices.push_back(d.name);
        } else {
            config.devices = parse_name_list(v);
        }
    } else if (name == "iterations") {
        config.iteration_counts.clear();
        for (const std::string& n : parse_name_list(value())) {
            config.iteration_counts.push_back(parse_int(n, "iteration count"));
        }
    } else if (name == "frame") {
        const std::string v = value();
        const auto x = v.find('x');
        if (x == std::string::npos) {
            throw User_error(cat("bad frame '", v, "', expected WxH"));
        }
        config.frame_width = parse_int(v.substr(0, x), "frame width");
        config.frame_height = parse_int(v.substr(x + 1), "frame height");
    } else if (name == "format") {
        config.format = parse_format(value());
    } else if (name == "threads") {
        config.space.threads = parse_int(value(), "thread count");
    } else if (name == "backend") {
        const std::string v = value();
        config.backends = v == "all" ? std::vector<std::string>{"paper", "streaming"}
                                     : parse_name_list(v);
    } else if (name == "pareto") {
        config.with_pareto = true;
    } else if (name == "validate") {
        config.validate = true;
    } else if (name == "search-formats") {
        config.search_formats = true;
    } else if (name == "psnr") {
        const std::string v = value();
        try {
            std::size_t consumed = 0;
            config.format_search.target_psnr_db = std::stod(v, &consumed);
            if (consumed != v.size()) throw Error("");
        } catch (const std::exception&) {
            throw User_error(cat("bad PSNR target '", v, "', expected a number"));
        }
    } else if (name == "validate-fixed") {
        config.validate_fixed = true;
    } else {
        return false;
    }
    return true;
}

Sweep_config default_sweep_config() {
    Sweep_config config;
    config.iteration_counts = {10};
    config.devices = {"xc6vlx760"};
    return config;
}

int run_sweep(int argc, char** argv) {
    Sweep_config config = default_sweep_config();
    std::string cache_dir;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&]() -> std::string {
            if (i + 1 >= argc) {
                throw User_error(cat("option ", arg, " needs a value"));
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") usage(0);
        if (arg == "--cache-dir") {
            cache_dir = next_value();
            continue;
        }
        if (arg.size() < 3 || arg.compare(0, 2, "--") != 0 ||
            !apply_sweep_option(config, arg.substr(2), next_value)) {
            throw User_error(cat("unknown sweep option '", arg,
                                 "' (see islhls --help)"));
        }
    }
    if (config.kernels.empty()) {
        throw User_error("sweep needs --kernels (see islhls --help)");
    }
    Service_options service_options;
    service_options.cache_dir = cache_dir;
    Sweep_service service(service_options);
    const Sweep_report report = service.run(config);
    std::cout << to_string(report);
    return 0;
}

// Parses a request file: `request` ... `end` blocks of bare sweep options,
// one per line; blank lines and # comments anywhere. Every error carries
// file:line so a bad batch pinpoints itself.
std::vector<Sweep_config> parse_requests(const std::string& path) {
    const std::string text = read_file(path);
    std::vector<Sweep_config> requests;
    bool in_request = false;
    int request_line = 0;
    Sweep_config config;
    const std::vector<std::string> lines = split(text, '\n');
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string line = trim(lines[i]);
        const std::string where = cat(path, ":", i + 1);
        if (line.empty() || line[0] == '#') continue;
        if (line == "request") {
            if (in_request) {
                throw User_error(cat(where, ": 'request' inside a request "
                                     "(missing 'end'?)"));
            }
            in_request = true;
            request_line = static_cast<int>(i + 1);
            config = default_sweep_config();
            continue;
        }
        if (line == "end") {
            if (!in_request) {
                throw User_error(cat(where, ": 'end' without a 'request'"));
            }
            if (config.kernels.empty()) {
                throw User_error(cat(path, ":", request_line,
                                     ": request needs a 'kernels' line"));
            }
            requests.push_back(std::move(config));
            in_request = false;
            continue;
        }
        if (!in_request) {
            throw User_error(cat(where, ": expected 'request', got '", line, "'"));
        }
        const auto space = line.find(' ');
        const std::string name = line.substr(0, space);
        const std::string rest =
            space == std::string::npos ? std::string() : trim(line.substr(space + 1));
        auto value = [&]() -> std::string {
            if (rest.empty()) {
                throw User_error(cat(where, ": option '", name, "' needs a value"));
            }
            return rest;
        };
        try {
            if (!apply_sweep_option(config, name, value)) {
                throw User_error(cat(where, ": unknown request option '", name, "'"));
            }
        } catch (const Islhls_error&) {
            throw;  // already carries context (or is the unknown-option error)
        } catch (const Error& e) {
            throw User_error(cat(where, ": ", e.what()));
        }
        if (!rest.empty() && (name == "pareto" || name == "validate" ||
                              name == "search-formats" || name == "validate-fixed")) {
            throw User_error(cat(where, ": option '", name,
                                 "' does not take a value"));
        }
    }
    if (in_request) {
        throw User_error(cat(path, ":", request_line,
                             ": request never closed (missing 'end')"));
    }
    if (requests.empty()) {
        throw User_error(cat(path, ": no requests (expected 'request' ... 'end' "
                             "blocks)"));
    }
    return requests;
}

int exit_code_for(Error_kind kind) {
    switch (kind) {
        case Error_kind::user: return 2;
        case Error_kind::io: return 3;
        case Error_kind::corrupt: return 4;
        case Error_kind::timeout: return 5;
        case Error_kind::internal: return 70;
    }
    return 70;
}

int run_serve(int argc, char** argv) {
    std::string requests_path;
    Service_options options;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&]() -> std::string {
            if (i + 1 >= argc) {
                throw User_error(cat("option ", arg, " needs a value"));
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") usage(0);
        else if (arg == "--requests") requests_path = next_value();
        else if (arg == "--cache-dir") options.cache_dir = next_value();
        else if (arg == "--deadline-ms") {
            options.deadline_ms = parse_int(next_value(), "deadline");
        } else if (arg == "--retries") {
            options.retry.max_attempts = parse_int(next_value(), "retry count");
            if (options.retry.max_attempts < 1) {
                throw User_error("--retries must be >= 1");
            }
        } else {
            throw User_error(cat("unknown serve option '", arg,
                                 "' (see islhls --help)"));
        }
    }
    if (requests_path.empty()) {
        throw User_error("serve needs --requests FILE (see islhls --help)");
    }
    const std::vector<Sweep_config> requests = parse_requests(requests_path);
    Sweep_service service(options);
    const std::vector<Request_outcome> outcomes = service.run_requests(requests);
    int failures = 0;
    int first_failure_code = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const Request_outcome& outcome = outcomes[i];
        std::cout << "=== request " << i + 1 << "/" << outcomes.size()
                  << (outcome.deduplicated ? " (deduplicated)" : "")
                  << (outcome.attempts > 1
                          ? cat(" (", outcome.attempts, " attempts)")
                          : std::string())
                  << " ===\n";
        if (outcome.ok) {
            std::cout << to_string(outcome.report);
        } else {
            ++failures;
            if (first_failure_code == 0) {
                first_failure_code = exit_code_for(outcome.kind);
            }
            std::cout << "failed (" << to_string(outcome.kind)
                      << "): " << outcome.message << "\n";
        }
    }
    std::cout << outcomes.size() - failures << "/" << outcomes.size()
              << " requests succeeded\n";
    return first_failure_code;
}

int run_cache(int argc, char** argv) {
    std::string cache_dir;
    bool verify = false;
    bool gc = false;
    long long max_bytes = -1;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&]() -> std::string {
            if (i + 1 >= argc) {
                throw User_error(cat("option ", arg, " needs a value"));
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") usage(0);
        else if (arg == "--cache-dir") cache_dir = next_value();
        else if (arg == "--verify") verify = true;
        else if (arg == "--gc") gc = true;
        else if (arg == "--max-bytes") {
            const std::string v = next_value();
            try {
                std::size_t consumed = 0;
                max_bytes = std::stoll(v, &consumed);
                if (consumed != v.size() || max_bytes < 0) throw Error("");
            } catch (const std::exception&) {
                throw User_error(cat("bad --max-bytes '", v,
                                     "', expected a non-negative integer"));
            }
        } else {
            throw User_error(cat("unknown cache option '", arg,
                                 "' (see islhls --help)"));
        }
    }
    if (cache_dir.empty()) {
        throw User_error("cache needs --cache-dir DIR (see islhls --help)");
    }
    if (!verify && !gc) {
        throw User_error("cache needs --verify or --gc (see islhls --help)");
    }
    if (max_bytes >= 0 && !gc) {
        throw User_error("--max-bytes needs --gc (eviction mutates the cache)");
    }
    Result_cache cache(cache_dir);
    const Result_cache::Verify_report report = cache.verify(gc, max_bytes);
    std::cout << "cache '" << cache_dir << "': " << report.records_ok
              << " records ok (" << report.record_bytes << " bytes), "
              << report.records_corrupt << " corrupt, "
              << report.quarantined_files << " quarantined, " << report.temp_files
              << " orphaned temp files\n";
    for (const std::string& note : report.notes) std::cout << "  " << note << "\n";
    if (gc) {
        std::cout << "removed " << report.removed_files << " files";
        if (max_bytes >= 0) {
            std::cout << ", evicted " << report.records_evicted
                      << " records for the " << max_bytes << "-byte budget";
        }
        std::cout << "\n";
    }
    // A verified-clean (or just-collected) cache exits 0; lingering
    // corruption is reported through the taxonomy's exit code.
    if (!gc && report.records_corrupt > 0) return exit_code_for(Error_kind::corrupt);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        if (argc >= 2 && std::string(argv[1]) == "sweep") return run_sweep(argc, argv);
        if (argc >= 2 && std::string(argv[1]) == "serve") return run_serve(argc, argv);
        if (argc >= 2 && std::string(argv[1]) == "cache") return run_cache(argc, argv);

        std::string input;
        Flow_options options;
        bool do_describe = false;
        bool do_pareto = false;
        bool do_fit = false;
        std::string vhdl_dir;

        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next_value = [&]() -> std::string {
                if (i + 1 >= argc) {
                    throw User_error(cat("option ", arg, " needs a value"));
                }
                return argv[++i];
            };
            if (arg == "--help" || arg == "-h") usage(0);
            else if (arg == "--list-kernels") {
                for (const Kernel_def& k : all_kernels()) {
                    std::cout << pad_right(k.name, 14) << k.display_name << " — "
                              << k.description << "\n";
                }
                return 0;
            } else if (arg == "--list-devices") {
                for (const Fpga_device& d : all_devices()) {
                    std::cout << pad_right(d.name, 14) << d.family << ", "
                              << format_grouped(d.lut_count) << " LUTs, "
                              << format_grouped(d.bram_kbits) << " kbit BRAM\n";
                }
                return 0;
            } else if (arg == "--iterations") {
                options.iterations = parse_int(next_value(), "iteration count");
            } else if (arg == "--frame") {
                const std::string value = next_value();
                const auto x = value.find('x');
                if (x == std::string::npos) {
                    throw User_error(cat("bad frame '", value, "', expected WxH"));
                }
                options.frame_width = parse_int(value.substr(0, x), "frame width");
                options.frame_height = parse_int(value.substr(x + 1), "frame height");
            } else if (arg == "--device") {
                options.device = next_value();
            } else if (arg == "--format") {
                options.format = parse_format(next_value());
            } else if (arg == "--threads") {
                options.space.threads = parse_int(next_value(), "thread count");
            } else if (arg == "--describe") {
                do_describe = true;
            } else if (arg == "--pareto") {
                do_pareto = true;
            } else if (arg == "--fit") {
                do_fit = true;
            } else if (arg == "--emit-vhdl") {
                vhdl_dir = next_value();
            } else if (!arg.empty() && arg[0] == '-') {
                throw User_error(cat("unknown option '", arg,
                                     "' (see islhls --help)"));
            } else {
                input = arg;
            }
        }
        if (input.empty()) usage(2);

        Hls_flow flow = [&] {
            if (starts_with(input, "builtin:")) {
                return Hls_flow::from_kernel(kernel_by_name(input.substr(8)), options);
            }
            return Hls_flow::from_source(read_file(input), options);
        }();

        std::cout << "kernel '" << flow.kernel_name() << "', " << options.iterations
                  << " iterations, " << options.frame_width << "x"
                  << options.frame_height << " frames, device " << options.device
                  << ", format " << to_string(options.format) << "\n\n";

        if (do_describe) std::cout << flow.describe() << "\n";
        if (!do_describe && !do_fit && vhdl_dir.empty()) do_pareto = true;
        if (do_pareto) print_pareto(flow);
        if (do_fit) print_fit(flow);
        if (!vhdl_dir.empty()) emit_vhdl(flow, vhdl_dir);
        return 0;
    } catch (const islhls::Error& e) {
        std::cerr << "islhls: error (" << to_string(classify_error(e))
                  << "): " << e.what() << "\n";
        return exit_code_for(classify_error(e));
    } catch (const std::exception& e) {
        std::cerr << "islhls: error (internal): " << e.what() << "\n";
        return exit_code_for(Error_kind::internal);
    }
}
