// islhls — command-line driver for the ISL HLS flow.
//
// Usage:
//   islhls <kernel.c> [options]
//   islhls sweep --kernels A,B [sweep options]
//
// Options:
//   --iterations N      ISL iteration count (default 10)
//   --frame WxH         frame size (default 1024x768)
//   --device NAME       target FPGA (default xc6vlx760; see --list-devices)
//   --format Qm.f       fixed-point format (default Q10.6)
//   --threads N         DSE fan-out threads (default 1; 0 = all cores)
//   --describe          print the dependency analysis and exit
//   --pareto            print the Pareto set (default action)
//   --fit               print the best design for the device
//   --emit-vhdl DIR     write support package + cone + top-level VHDL for
//                       the best device fit into DIR
//   --list-kernels      list built-in kernels (pass builtin:NAME as input)
//   --list-devices      list known devices
//
// The `sweep` subcommand batches many kernels × devices × iteration counts
// through one shared cone/synthesis cache (see core/sweep.hpp):
//   --kernels A,B|all     built-in kernels to sweep (required)
//   --devices A,B|all     target FPGAs (default xc6vlx760)
//   --iterations N1,N2    iteration counts (default 10)
//   --frame WxH, --format Qm.f, --threads N   as above
//   --pareto              additionally run the Pareto sweep per combination
//   --validate            golden-check each feasible fit against the simulator
//   --search-formats      per-(window, depth) fixed-point format search; each
//                         fit reports its covering format + re-priced area
//   --psnr DB             format search accuracy target (default 50)
//   --validate-fixed      fixed-mode golden check against the integer frame
//                         engine (raw words must match exactly)
//
// Examples:
//   islhls my_stencil.c --iterations 8 --fit
//   islhls builtin:chambolle --device xc7vx485t --emit-vhdl out/
//   islhls sweep --kernels igf,chambolle --devices all --iterations 4,10 --threads 0
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "backend/vhdl_toplevel.hpp"
#include "core/flow.hpp"
#include "core/sweep.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

namespace {

using namespace islhls;

[[noreturn]] void usage(int code) {
    std::cout <<
        R"(usage: islhls <kernel.c | builtin:NAME> [options]
       islhls sweep --kernels A,B|all [sweep options]
  --iterations N    ISL iteration count (default 10)
  --frame WxH       frame size (default 1024x768)
  --device NAME     target FPGA (default xc6vlx760)
  --format Qm.f     fixed-point format (default Q10.6)
  --threads N       DSE fan-out threads (default 1; 0 = all cores)
  --describe        print the dependency analysis
  --pareto          print the Pareto set (default)
  --fit             print the best design for the device
  --emit-vhdl DIR   write VHDL for the best fit into DIR
  --list-kernels    list built-in kernels
  --list-devices    list known devices
sweep options:
  --kernels A,B|all    built-in kernels to sweep (required)
  --devices A,B|all    target FPGAs (default xc6vlx760)
  --iterations N1,N2   iteration counts (default 10)
  --frame WxH, --format Qm.f, --threads N   as above
  --pareto             additionally run the Pareto sweep per combination
  --validate           golden-check each feasible fit (simulated architecture
                       vs ghost golden on a small frame; must be exact)
  --search-formats     search the narrowest passing Qm.f per (window, depth),
                       report each fit's covering format and its re-priced area
  --psnr DB            format search accuracy target (default 50)
  --validate-fixed     fixed-point golden check: simulate each feasible fit
                       under quantization vs the fixed frame engine (raw words
                       must match exactly)
)";
    std::exit(code);
}

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw Io_error(cat("cannot open '", path, "'"));
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// std::stoi with option-parse errors turned into user-facing islhls errors.
int parse_int(const std::string& text, const std::string& what) {
    try {
        std::size_t consumed = 0;
        const int value = std::stoi(text, &consumed);
        if (consumed != text.size()) throw Error("");
        return value;
    } catch (const std::exception&) {
        throw Error(cat("bad ", what, " '", text, "', expected an integer"));
    }
}

Fixed_format parse_format(const std::string& text) {
    // "Q10.6" -> {10, 6}
    if (text.size() < 4 || (text[0] != 'Q' && text[0] != 'q')) {
        throw Error(cat("bad format '", text, "', expected Qm.f"));
    }
    const auto dot = text.find('.');
    if (dot == std::string::npos) throw Error(cat("bad format '", text, "'"));
    Fixed_format fmt;
    fmt.integer_bits = parse_int(text.substr(1, dot - 1), "format");
    fmt.frac_bits = parse_int(text.substr(dot + 1), "format");
    if (fmt.total_bits() < 2 || fmt.total_bits() > 62) {
        throw Error(cat("format '", text, "' out of the 2..62 bit range"));
    }
    return fmt;
}

void print_pareto(Hls_flow& flow) {
    const auto result = flow.pareto();
    std::cout << "evaluated " << result.points.size() << " design points\n";
    Table table({"kLUTs (est)", "ms/frame", "fps", "architecture"});
    for (std::size_t idx : result.front) {
        const auto& p = result.points[idx];
        table.add(format_fixed(p.estimated_area_luts / 1e3, 1),
                  format_fixed(p.throughput.seconds_per_frame * 1e3, 3),
                  format_fixed(p.throughput.fps, 1), to_string(p.instance));
    }
    std::cout << table;
}

void print_fit(Hls_flow& flow) {
    const auto fit = flow.device_fit();
    if (!fit.has_best) {
        std::cout << "no feasible design fits " << flow.device().name << "\n";
        return;
    }
    const auto& best = fit.best;
    std::cout << "best design for " << flow.device().name << ":\n  "
              << to_string(best.instance) << "\n  "
              << format_fixed(best.throughput.fps, 1) << " fps ("
              << format_fixed(best.throughput.seconds_per_frame * 1e3, 2)
              << " ms/frame), bottleneck: " << best.throughput.bottleneck << "\n  "
              << format_fixed(best.estimated_area_luts / 1e3, 1)
              << " kLUTs estimated (" << format_fixed(best.actual_area_luts / 1e3, 1)
              << " actual), f_max " << format_fixed(best.f_max_mhz, 1) << " MHz\n  "
              << "on-chip buffers " << format_fixed(best.memory.total_kbits, 1)
              << " kbit (" << format_fixed(best.memory.saving_factor, 0)
              << "x below whole-frame buffering)\n";
}

void emit_vhdl(Hls_flow& flow, const std::string& dir) {
    namespace fs = std::filesystem;
    fs::create_directories(dir);
    const auto fit = flow.device_fit();
    if (!fit.has_best) {
        std::cout << "no feasible design; nothing emitted\n";
        return;
    }
    const Arch_instance& instance = fit.best.instance;
    Vhdl_options options;
    options.format = flow.options().format;

    const fs::path base(dir);
    {
        std::ofstream f(base / "islhls_support.vhdl");
        f << emit_support_package(options);
    }
    std::vector<std::string> files{"islhls_support.vhdl"};
    for (int d : instance.depth_classes()) {
        const Cone& cone = flow.cones().cone(instance.window, d);
        const std::string name =
            cone_entity_name(flow.kernel_name(), cone.spec(), options) + ".vhdl";
        std::ofstream f(base / name);
        f << emit_cone(cone, flow.kernel_name(), options);
        files.push_back(name);
    }
    {
        const std::string name =
            toplevel_entity_name(flow.kernel_name(), instance, options) + ".vhdl";
        std::ofstream f(base / name);
        f << emit_architecture_toplevel(flow.cones(), instance, options);
        files.push_back(name);
    }
    std::cout << "wrote " << files.size() << " files to " << dir << ":\n";
    for (const auto& f : files) std::cout << "  " << f << "\n";
}

std::vector<std::string> parse_name_list(const std::string& value) {
    std::vector<std::string> names;
    for (const std::string& part : split(value, ',')) {
        const std::string name = trim(part);
        if (!name.empty()) names.push_back(name);
    }
    if (names.empty()) throw Error(cat("empty list '", value, "'"));
    return names;
}

int run_sweep(int argc, char** argv) {
    Sweep_config config;
    config.iteration_counts = {10};
    config.devices = {"xc6vlx760"};
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&]() -> std::string {
            if (i + 1 >= argc) usage(2);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") usage(0);
        else if (arg == "--kernels") {
            const std::string value = next_value();
            config.kernels = value == "all" ? kernel_names() : parse_name_list(value);
        } else if (arg == "--devices") {
            const std::string value = next_value();
            if (value == "all") {
                config.devices.clear();
                for (const Fpga_device& d : all_devices()) config.devices.push_back(d.name);
            } else {
                config.devices = parse_name_list(value);
            }
        } else if (arg == "--iterations") {
            config.iteration_counts.clear();
            for (const std::string& n : parse_name_list(next_value())) {
                config.iteration_counts.push_back(parse_int(n, "iteration count"));
            }
        } else if (arg == "--frame") {
            const std::string value = next_value();
            const auto x = value.find('x');
            if (x == std::string::npos) {
                throw Error(cat("bad frame '", value, "', expected WxH"));
            }
            config.frame_width = parse_int(value.substr(0, x), "frame width");
            config.frame_height = parse_int(value.substr(x + 1), "frame height");
        } else if (arg == "--format") {
            config.format = parse_format(next_value());
        } else if (arg == "--threads") {
            config.space.threads = parse_int(next_value(), "thread count");
        } else if (arg == "--pareto") {
            config.with_pareto = true;
        } else if (arg == "--validate") {
            config.validate = true;
        } else if (arg == "--search-formats") {
            config.search_formats = true;
        } else if (arg == "--psnr") {
            const std::string value = next_value();
            try {
                std::size_t consumed = 0;
                config.format_search.target_psnr_db = std::stod(value, &consumed);
                if (consumed != value.size()) throw Error("");
            } catch (const std::exception&) {
                throw Error(cat("bad PSNR target '", value, "', expected a number"));
            }
        } else if (arg == "--validate-fixed") {
            config.validate_fixed = true;
        } else {
            std::cerr << "unknown sweep option " << arg << "\n";
            usage(2);
        }
    }
    if (config.kernels.empty()) {
        std::cerr << "sweep needs --kernels\n";
        usage(2);
    }
    Sweep_session session(config);
    const Sweep_report report = session.run();
    std::cout << to_string(report);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        if (argc >= 2 && std::string(argv[1]) == "sweep") return run_sweep(argc, argv);

        std::string input;
        Flow_options options;
        bool do_describe = false;
        bool do_pareto = false;
        bool do_fit = false;
        std::string vhdl_dir;

        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next_value = [&]() -> std::string {
                if (i + 1 >= argc) usage(2);
                return argv[++i];
            };
            if (arg == "--help" || arg == "-h") usage(0);
            else if (arg == "--list-kernels") {
                for (const Kernel_def& k : all_kernels()) {
                    std::cout << pad_right(k.name, 14) << k.display_name << " — "
                              << k.description << "\n";
                }
                return 0;
            } else if (arg == "--list-devices") {
                for (const Fpga_device& d : all_devices()) {
                    std::cout << pad_right(d.name, 14) << d.family << ", "
                              << format_grouped(d.lut_count) << " LUTs, "
                              << format_grouped(d.bram_kbits) << " kbit BRAM\n";
                }
                return 0;
            } else if (arg == "--iterations") {
                options.iterations = parse_int(next_value(), "iteration count");
            } else if (arg == "--frame") {
                const std::string value = next_value();
                const auto x = value.find('x');
                if (x == std::string::npos) {
                    throw Error(cat("bad frame '", value, "', expected WxH"));
                }
                options.frame_width = parse_int(value.substr(0, x), "frame width");
                options.frame_height = parse_int(value.substr(x + 1), "frame height");
            } else if (arg == "--device") {
                options.device = next_value();
            } else if (arg == "--format") {
                options.format = parse_format(next_value());
            } else if (arg == "--threads") {
                options.space.threads = parse_int(next_value(), "thread count");
            } else if (arg == "--describe") {
                do_describe = true;
            } else if (arg == "--pareto") {
                do_pareto = true;
            } else if (arg == "--fit") {
                do_fit = true;
            } else if (arg == "--emit-vhdl") {
                vhdl_dir = next_value();
            } else if (!arg.empty() && arg[0] == '-') {
                std::cerr << "unknown option " << arg << "\n";
                usage(2);
            } else {
                input = arg;
            }
        }
        if (input.empty()) usage(2);

        Hls_flow flow = [&] {
            if (starts_with(input, "builtin:")) {
                return Hls_flow::from_kernel(kernel_by_name(input.substr(8)), options);
            }
            return Hls_flow::from_source(read_file(input), options);
        }();

        std::cout << "kernel '" << flow.kernel_name() << "', " << options.iterations
                  << " iterations, " << options.frame_width << "x"
                  << options.frame_height << " frames, device " << options.device
                  << ", format " << to_string(options.format) << "\n\n";

        if (do_describe) std::cout << flow.describe() << "\n";
        if (!do_describe && !do_fit && vhdl_dir.empty()) do_pareto = true;
        if (do_pareto) print_pareto(flow);
        if (do_fit) print_fit(flow);
        if (!vhdl_dir.empty()) emit_vhdl(flow, vhdl_dir);
        return 0;
    } catch (const islhls::Error& e) {
        std::cerr << "islhls: " << e.what() << "\n";
        return 1;
    }
}
