#!/usr/bin/env python3
"""Behavior lock for tools/check_bench.py, run as a ctest: the perf gate must
fail when a gated metric regresses, disappears, or a record is missing or
malformed — and must pass regressions within tolerance and fresh-only
additions. Uses only the standard library (tempdirs of fixture JSON)."""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench  # noqa: E402


def write_record(directory, name, metrics, raw=None, optional=None):
    path = os.path.join(directory, name)
    with open(path, "w") as f:
        if raw is not None:
            f.write(raw)
        else:
            record = {"bench": name, "gated_metrics": metrics}
            if optional is not None:
                record["optional_gated_metrics"] = optional
            json.dump(record, f)
    return path


class Check_bench_gate(unittest.TestCase):
    def setUp(self):
        self._baseline = tempfile.TemporaryDirectory()
        self._fresh = tempfile.TemporaryDirectory()
        self.baseline = self._baseline.name
        self.fresh = self._fresh.name
        self.addCleanup(self._baseline.cleanup)
        self.addCleanup(self._fresh.cleanup)

    def run_gate(self, max_regression=0.30, require_optional=()):
        argv = [self.baseline, self.fresh, "--max-regression", str(max_regression)]
        for metric in require_optional:
            argv += ["--require-optional", metric]
        return check_bench.main(argv)

    def test_clean_pass_within_tolerance(self):
        write_record(self.baseline, "BENCH_a.json", {"speedup": 10.0})
        write_record(self.fresh, "BENCH_a.json", {"speedup": 8.0})  # -20% < 30%
        self.assertEqual(self.run_gate(), 0)

    def test_regression_beyond_tolerance_fails(self):
        write_record(self.baseline, "BENCH_a.json", {"speedup": 10.0})
        write_record(self.fresh, "BENCH_a.json", {"speedup": 6.0})  # -40%
        self.assertEqual(self.run_gate(), 1)

    def test_disappeared_metric_fails(self):
        # The satellite case: a gated metric silently dropped from the fresh
        # record (e.g. a bench renamed its metric) must fail the gate even
        # when every surviving metric is healthy.
        write_record(self.baseline, "BENCH_a.json",
                     {"speedup": 10.0, "tiled_speedup": 1.5})
        write_record(self.fresh, "BENCH_a.json", {"speedup": 12.0})
        self.assertEqual(self.run_gate(), 1)

    def test_missing_fresh_record_fails(self):
        write_record(self.baseline, "BENCH_a.json", {"speedup": 10.0})
        self.assertEqual(self.run_gate(), 1)

    def test_empty_gated_metrics_object_fails_when_baseline_has_metrics(self):
        write_record(self.baseline, "BENCH_a.json", {"speedup": 10.0})
        write_record(self.fresh, "BENCH_a.json", {})
        self.assertEqual(self.run_gate(), 1)

    def test_new_metric_and_new_record_do_not_fail(self):
        write_record(self.baseline, "BENCH_a.json", {"speedup": 10.0})
        write_record(self.fresh, "BENCH_a.json", {"speedup": 10.5, "extra": 2.0})
        write_record(self.fresh, "BENCH_b.json", {"novel": 1.0})
        self.assertEqual(self.run_gate(), 0)

    def test_invalid_json_fails_cleanly(self):
        write_record(self.baseline, "BENCH_a.json", {"speedup": 10.0})
        write_record(self.fresh, "BENCH_a.json", None, raw="{not json")
        self.assertEqual(self.run_gate(), 1)

    def test_non_numeric_metric_fails_cleanly(self):
        write_record(self.baseline, "BENCH_a.json", {"speedup": 10.0})
        write_record(self.fresh, "BENCH_a.json", {"speedup": "fast"})
        self.assertEqual(self.run_gate(), 1)

    def test_no_baselines_is_a_usage_error(self):
        self.assertEqual(self.run_gate(), 2)

    def test_optional_metric_enforced_when_both_sides_have_it(self):
        write_record(self.baseline, "BENCH_a.json", {"speedup": 10.0},
                     optional={"scaling_4t": 3.0})
        write_record(self.fresh, "BENCH_a.json", {"speedup": 10.0},
                     optional={"scaling_4t": 1.5})  # -50% > 30%
        self.assertEqual(self.run_gate(), 1)

    def test_optional_metric_within_tolerance_passes(self):
        write_record(self.baseline, "BENCH_a.json", {"speedup": 10.0},
                     optional={"scaling_4t": 3.0})
        write_record(self.fresh, "BENCH_a.json", {"speedup": 10.0},
                     optional={"scaling_4t": 2.5})  # -17% < 30%
        self.assertEqual(self.run_gate(), 0)

    def test_optional_metric_missing_fresh_is_tolerated(self):
        # The host-capability case: a 4-thread scaling metric recorded on a
        # capable host must not fail the gate on a 1-core CI runner that
        # cannot measure it (empty optional object or none at all).
        write_record(self.baseline, "BENCH_a.json", {"speedup": 10.0},
                     optional={"scaling_4t": 3.0})
        write_record(self.fresh, "BENCH_a.json", {"speedup": 10.0},
                     optional={})
        self.assertEqual(self.run_gate(), 0)
        write_record(self.fresh, "BENCH_a.json", {"speedup": 10.0})
        self.assertEqual(self.run_gate(), 0)

    def test_optional_metric_only_fresh_is_tolerated(self):
        write_record(self.baseline, "BENCH_a.json", {"speedup": 10.0})
        write_record(self.fresh, "BENCH_a.json", {"speedup": 10.0},
                     optional={"scaling_4t": 3.0})
        self.assertEqual(self.run_gate(), 0)

    def test_non_numeric_optional_metric_fails_cleanly(self):
        write_record(self.baseline, "BENCH_a.json", {"speedup": 10.0})
        write_record(self.fresh, "BENCH_a.json", {"speedup": 10.0},
                     optional={"scaling_4t": "fast"})
        self.assertEqual(self.run_gate(), 1)

    def test_required_optional_metric_present_passes(self):
        # The capable-runner case: CI detected >= 4 cores and demands the
        # 4-thread scaling ratio actually got measured.
        write_record(self.baseline, "BENCH_a.json", {"speedup": 10.0})
        write_record(self.fresh, "BENCH_a.json", {"speedup": 10.0},
                     optional={"scaling_4t": 3.0})
        self.assertEqual(self.run_gate(require_optional=["scaling_4t"]), 0)

    def test_required_optional_metric_missing_fails(self):
        # Without --require-optional this is a tolerated skip; with it, a
        # capable runner that stopped measuring the metric fails the gate.
        write_record(self.baseline, "BENCH_a.json", {"speedup": 10.0})
        write_record(self.fresh, "BENCH_a.json", {"speedup": 10.0})
        self.assertEqual(self.run_gate(require_optional=["scaling_4t"]), 1)

    def test_required_optional_metric_in_new_record_counts(self):
        # A fresh-only record (no baseline yet) that measured the metric
        # satisfies the presence requirement.
        write_record(self.baseline, "BENCH_a.json", {"speedup": 10.0})
        write_record(self.fresh, "BENCH_a.json", {"speedup": 10.0})
        write_record(self.fresh, "BENCH_b.json", {"novel": 1.0},
                     optional={"scaling_4t": 2.0})
        self.assertEqual(self.run_gate(require_optional=["scaling_4t"]), 0)

    def test_required_optional_still_enforces_value_when_both_present(self):
        write_record(self.baseline, "BENCH_a.json", {"speedup": 10.0},
                     optional={"scaling_4t": 3.0})
        write_record(self.fresh, "BENCH_a.json", {"speedup": 10.0},
                     optional={"scaling_4t": 1.5})  # present, but -50%
        self.assertEqual(self.run_gate(require_optional=["scaling_4t"]), 1)


if __name__ == "__main__":
    unittest.main()
