#!/usr/bin/env python3
"""Perf-trajectory gate: diff freshly measured BENCH_*.json records against
the committed baselines and fail on throughput regressions.

Every bench record carries a "gated_metrics" object of name -> value pairs
where higher is better. The gated values are deliberately same-host ratios
(engine vs interpreter, tiled vs untiled, parallel vs serial makespan), not
absolute Mcells/s: absolute throughput tracks whatever machine CI happens to
land on, while a ratio measured on one host only moves when the code itself
gets faster or slower. A metric regresses when

    fresh < baseline * (1 - max_regression)

Usage: check_bench.py <baseline-dir> <fresh-dir> [--max-regression 0.30]

Exit status is non-zero when any baseline metric regressed, lost its fresh
counterpart (a gated metric silently disappearing from a bench record is a
gate failure, not a skip), a record is unreadable or malformed, or a
baseline record has no fresh record at all. Metrics that exist only in the
fresh record are reported as new and do not fail the gate (they become
binding once the record is committed as the new baseline); fresh records
with no baseline counterpart are reported the same way.

Records may additionally carry an "optional_gated_metrics" object for
metrics that only exist on capable hosts (e.g. multi-thread scaling that a
single-core CI runner cannot measure). An optional metric is enforced with
the same regression floor when it is present in BOTH records, and merely
noted — never failed — when either side lacks it.

--require-optional METRIC (repeatable) upgrades an optional metric to
mandatory presence: the run fails unless some fresh record measured it. CI
passes this on runners known to be capable (e.g. >= 4 cores for the 4-thread
tiled-scaling ratio), so "the capable runner silently stopped measuring"
becomes a gate failure instead of a permanent skip. Value enforcement still
follows the both-sides rule above — presence is required, the regression
floor binds once a capable-host baseline is committed.
"""

import argparse
import glob
import json
import os
import sys


def load_metrics(path):
    """Returns the record's (gated_metrics, optional_gated_metrics) dicts, or
    raises ValueError with a one-line reason (unreadable file, invalid JSON,
    non-numeric values)."""
    try:
        with open(path) as f:
            record = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise ValueError(f"unreadable record: {err}") from err
    if not isinstance(record, dict):
        raise ValueError("record is not a JSON object")
    out = []
    for key in ("gated_metrics", "optional_gated_metrics"):
        metrics = record.get(key, {})
        if not isinstance(metrics, dict):
            raise ValueError(f"{key} is not an object")
        bad = {k: v for k, v in metrics.items()
               if not isinstance(v, (int, float)) or isinstance(v, bool)}
        if bad:
            raise ValueError(f"non-numeric {key} {sorted(bad)}")
        out.append(metrics)
    return tuple(out)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline_dir", help="directory holding the committed BENCH_*.json")
    parser.add_argument("fresh_dir", help="directory holding the freshly measured BENCH_*.json")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional drop before failing (default 0.30)")
    parser.add_argument("--require-optional", action="append", default=[],
                        metavar="METRIC",
                        help="fail unless some fresh record measured this "
                             "optional metric (repeatable)")
    args = parser.parse_args(argv)

    baselines = sorted(glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json")))
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {args.baseline_dir}", file=sys.stderr)
        return 2

    failures = 0
    seen_optional = set()
    for baseline_path in baselines:
        name = os.path.basename(baseline_path)
        fresh_path = os.path.join(args.fresh_dir, name)
        print(f"== {name}")
        if not os.path.exists(fresh_path):
            print(f"  FAIL: no freshly measured {name} (bench not run?)")
            failures += 1
            continue
        try:
            baseline, baseline_opt = load_metrics(baseline_path)
        except ValueError as err:
            print(f"  FAIL: baseline: {err}")
            failures += 1
            continue
        try:
            fresh, fresh_opt = load_metrics(fresh_path)
        except ValueError as err:
            print(f"  FAIL: fresh: {err}")
            failures += 1
            continue
        seen_optional.update(fresh_opt)
        if not baseline:
            print("  note: baseline has no gated_metrics; nothing to enforce")
        for metric, base_value in sorted(baseline.items()):
            if metric not in fresh:
                print(f"  FAIL: {metric}: gated metric disappeared from the fresh "
                      f"record (renamed or dropped without updating the baseline?)")
                failures += 1
                continue
            fresh_value = fresh[metric]
            floor = base_value * (1.0 - args.max_regression)
            status = "ok" if fresh_value >= floor else "FAIL"
            if status == "FAIL":
                failures += 1
            change = (fresh_value / base_value - 1.0) * 100.0 if base_value else 0.0
            print(f"  {status}: {metric}: baseline {base_value:g}, fresh {fresh_value:g} "
                  f"({change:+.1f}%, floor {floor:g})")
        for metric in sorted(set(fresh) - set(baseline)):
            print(f"  new: {metric}: {fresh[metric]:g} (unenforced until committed)")
        # Optional metrics: host-dependent, enforced only when both sides
        # measured them. A missing side is noted, never failed — a baseline
        # recorded on a 4-core host must not fail CI on a 1-core runner.
        for metric, base_value in sorted(baseline_opt.items()):
            if metric not in fresh_opt:
                print(f"  note: {metric}: optional metric not measured on this "
                      f"host (baseline {base_value:g}); skipping")
                continue
            fresh_value = fresh_opt[metric]
            floor = base_value * (1.0 - args.max_regression)
            status = "ok" if fresh_value >= floor else "FAIL"
            if status == "FAIL":
                failures += 1
            change = (fresh_value / base_value - 1.0) * 100.0 if base_value else 0.0
            print(f"  {status}: {metric} (optional): baseline {base_value:g}, "
                  f"fresh {fresh_value:g} ({change:+.1f}%, floor {floor:g})")
        for metric in sorted(set(fresh_opt) - set(baseline_opt)):
            print(f"  new: {metric} (optional): {fresh_opt[metric]:g} "
                  f"(unenforced until committed)")

    baseline_names = {os.path.basename(p) for p in baselines}
    for fresh_path in sorted(glob.glob(os.path.join(args.fresh_dir, "BENCH_*.json"))):
        name = os.path.basename(fresh_path)
        if name not in baseline_names:
            print(f"== {name}\n  new record (unenforced until committed)")
            try:
                _, fresh_opt = load_metrics(fresh_path)
            except ValueError:
                continue  # new records are unenforced either way
            seen_optional.update(fresh_opt)

    for metric in args.require_optional:
        if metric in seen_optional:
            print(f"required optional metric {metric}: measured.")
        else:
            print(f"FAIL: required optional metric {metric} was not measured "
                  f"by any fresh record (capable runner stopped emitting it?)")
            failures += 1

    if failures:
        print(f"\n{failures} gated metric(s) regressed beyond "
              f"{args.max_regression:.0%} or went missing — failing the perf gate.")
        return 1
    print("\nperf gate clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
