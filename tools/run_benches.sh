#!/usr/bin/env bash
# Perf-trajectory runner: executes the repo's measured benches and records
# their BENCH_*.json results at the repository root. Each bench writes via a
# temp file + rename, so an aborted run never leaves a torn record.
#
# CI diffs the freshly recorded files against the committed baselines with
# tools/check_bench.py and fails on regressions of the gated ratios.
#
# Usage: tools/run_benches.sh [build-dir]   (default: build)
set -euo pipefail

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

"$build_dir/micro_sim_throughput" --json "$repo_root/BENCH_sim.json"
"$build_dir/micro_dse_parallel" --json "$repo_root/BENCH_dse.json"
"$build_dir/micro_format_search" --json "$repo_root/BENCH_fixed.json"
