#!/usr/bin/env bash
# Perf-trajectory runner: executes the repo's measured benches and records
# their BENCH_*.json results at the repository root. Each bench writes via a
# temp file + rename, so an aborted run never leaves a torn record.
#
# Usage: tools/run_benches.sh [build-dir]   (default: build)
set -euo pipefail

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

"$build_dir/micro_sim_throughput" --json "$repo_root/BENCH_sim.json"
