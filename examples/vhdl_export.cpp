// VHDL artifact export: what a user hands to the synthesis tool.
//
// Emits, for a chosen kernel and cone geometry:
//   - the support package (fixed-point divider / sqrt entities),
//   - the cone entity itself,
//   - a self-checking testbench whose expected outputs come from the
//     bit-accurate fixed-point executor (so `ghdl` or any simulator can
//     verify the entity without this library).
#include <fstream>
#include <iostream>

#include "backend/vhdl.hpp"
#include "core/flow.hpp"
#include "grid/frame_ops.hpp"
#include "sim/fixed_exec.hpp"
#include "support/prng.hpp"
#include "support/text.hpp"

int main(int argc, char** argv) {
    using namespace islhls;

    const std::string kernel_name = argc > 1 ? argv[1] : "igf";
    const int window = argc > 2 ? std::atoi(argv[2]) : 4;
    const int depth = argc > 3 ? std::atoi(argv[3]) : 2;

    Flow_options options;
    Hls_flow flow = Hls_flow::from_kernel(kernel_by_name(kernel_name), options);

    Vhdl_options vhdl_options;
    vhdl_options.format = Fixed_format{14, 6};

    const Cone& cone = flow.cones().cone(window, depth);
    const Register_program& program = cone.program();

    // Random (quantized) stimulus and its bit-exact expected response.
    Prng rng(42);
    std::vector<double> stimulus;
    for (int i = 0; i < program.input_count(); ++i) {
        stimulus.push_back(quantize(rng.next_in(0.0, 200.0), vhdl_options.format));
    }
    const std::vector<double> expected =
        run_fixed(program, stimulus, vhdl_options.format);

    const std::string base = cat(kernel_name, "_w", window, "_d", depth);
    {
        std::ofstream f(base + "_support.vhdl");
        f << emit_support_package(vhdl_options);
    }
    {
        std::ofstream f(base + ".vhdl");
        f << emit_cone(cone, kernel_name, vhdl_options);
    }
    {
        std::ofstream f(base + "_tb.vhdl");
        f << emit_cone_testbench(cone, kernel_name, stimulus, expected, vhdl_options);
    }

    std::cout << "cone " << to_string(cone.spec()) << " of kernel '" << kernel_name
              << "':\n"
              << "  " << cone.stats().register_count << " registers, "
              << cone.stats().input_count << " inputs, pipeline depth "
              << cone.stats().pipeline_depth << ", reuse factor "
              << format_fixed(cone.stats().reuse_factor(), 2) << "\n"
              << "wrote " << base << "_support.vhdl, " << base << ".vhdl, " << base
              << "_tb.vhdl\n"
              << "simulate with: ghdl -a --std=08 " << base << "_support.vhdl "
              << base << ".vhdl " << base << "_tb.vhdl && ghdl run tb_islhls_"
              << base << "\n";
    return 0;
}
