// IGF end to end: the paper's first case study as an application.
//
// Blurs a synthetic camera frame with 10 iterations of the 3x3 binomial
// kernel, three ways:
//   1. golden software reference (ghost semantics),
//   2. the generated cone architecture, simulated functionally (must match
//      the golden bit for bit),
//   3. the same architecture under Q14.6 fixed-point quantization (PSNR
//      reported), which is what the emitted VHDL computes.
// Then explores the design space for a Virtex-6 and writes the winning
// cone's VHDL next to the output images.
#include <fstream>
#include <iostream>

#include "core/flow.hpp"
#include "grid/frame_io.hpp"
#include "grid/frame_ops.hpp"
#include "sim/arch_sim.hpp"
#include "sim/golden.hpp"
#include "support/text.hpp"

int main() {
    using namespace islhls;

    Flow_options options;
    options.iterations = 10;
    options.frame_width = 256;  // simulation-friendly frame
    options.frame_height = 192;
    options.device = "xc6vlx760";

    const Kernel_def& kernel = kernel_by_name("igf");
    Hls_flow flow = Hls_flow::from_kernel(kernel, options);
    std::cout << flow.describe() << "\n";

    // Workload.
    const Frame scene = make_synthetic_scene(options.frame_width,
                                             options.frame_height, 2026);
    const Frame_set initial = kernel.make_initial(scene);
    save_pgm(scene, "igf_input.pgm");

    // 1. Golden reference.
    const Frame_set golden =
        run_ghost_ir(flow.step(), initial, options.iterations, kernel.boundary);

    // 2. Architecture simulation (best device fit).
    const auto fit = flow.device_fit();
    std::cout << "device fit: " << to_string(fit.best.instance) << " -> "
              << format_fixed(fit.best.throughput.fps, 1) << " fps estimated\n";
    Arch_instance instance = fit.best.instance;
    const Arch_sim_result sim =
        simulate_architecture(flow.cones(), instance, initial, {});
    const double exact_diff = max_abs_diff(sim.final_state.field("u"),
                                           golden.field("u"));
    std::cout << "architecture vs golden max |diff| = " << exact_diff
              << (exact_diff == 0.0 ? "  (bit exact)" : "  (MISMATCH!)") << "\n";

    // 3. Fixed-point run.
    Arch_sim_options fx;
    fx.fixed_point = true;
    fx.format = Fixed_format{14, 6};
    const Arch_sim_result fixed =
        simulate_architecture(flow.cones(), instance, initial, fx);
    std::cout << "fixed-point " << to_string(fx.format) << " PSNR vs golden = "
              << format_fixed(psnr(golden.field("u"), fixed.final_state.field("u")), 1)
              << " dB\n";
    save_pgm(fixed.final_state.field("u"), "igf_blurred.pgm");

    // Transfer statistics vs the naive approach.
    const long long elems = static_cast<long long>(options.frame_width) *
                            options.frame_height;
    std::cout << "off-chip reads: " << sim.stats.offchip_elements_read
              << " elements (" << format_fixed(static_cast<double>(
                                                   sim.stats.offchip_elements_read) /
                                                   (elems * options.iterations),
                                               2)
              << "x of the per-iteration streaming volume)\n";

    // VHDL artifacts.
    std::ofstream vhdl("igf_cone.vhdl");
    vhdl << flow.support_package() << "\n"
         << flow.generate_vhdl(instance.window, instance.level_depths.front());
    std::cout << "wrote igf_input.pgm, igf_blurred.pgm, igf_cone.vhdl\n";
    return 0;
}
