// Quickstart: run the full HLS flow on a small Jacobi kernel written in C.
//
//   1. give the flow a C stencil kernel,
//   2. inspect the dependency analysis,
//   3. generate VHDL for one cone,
//   4. explore the design space and print the Pareto set,
//   5. pick the best design for a specific FPGA.
//
// Build: cmake --build build --target example_quickstart
// Run:   ./build/examples/example_quickstart
#include <iostream>

#include "core/flow.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

namespace {

const char* jacobi_kernel = R"(
void jacobi_step(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            u_out[y][x] = 0.25f * (u[y-1][x] + u[y+1][x] + u[y][x-1] + u[y][x+1]);
        }
    }
}
)";

}  // namespace

int main() {
    using namespace islhls;

    Flow_options options;
    options.iterations = 8;
    options.frame_width = 640;
    options.frame_height = 480;
    options.device = "xc6vlx760";
    options.space.max_window = 6;
    options.space.max_depth = 4;

    // 1-2. Frontend + symbolic execution.
    Hls_flow flow = Hls_flow::from_source(jacobi_kernel, options);
    std::cout << "=== dependency analysis ===\n" << flow.describe() << "\n";

    // 3. VHDL for a 3x3-window depth-2 cone.
    const std::string vhdl = flow.generate_vhdl(3, 2);
    std::cout << "=== generated VHDL (first lines) ===\n";
    std::size_t pos = 0;
    for (int line = 0; line < 8 && pos != std::string::npos; ++line) {
        const std::size_t next = vhdl.find('\n', pos);
        std::cout << vhdl.substr(pos, next - pos) << "\n";
        pos = next == std::string::npos ? next : next + 1;
    }
    std::cout << "... (" << vhdl.size() << " bytes total)\n\n";

    // 4. Pareto exploration.
    auto pareto = flow.pareto();
    std::cout << "=== design space ===\n"
              << "evaluated " << pareto.points.size() << " design points, Pareto set "
              << pareto.front.size() << " points\n";
    Table table({"area (kLUT)", "ms/frame", "fps", "architecture"});
    for (std::size_t idx : pareto.front) {
        const auto& p = pareto.points[idx];
        table.add(format_fixed(p.estimated_area_luts / 1000.0, 1),
                  format_fixed(p.throughput.seconds_per_frame * 1000.0, 3),
                  format_fixed(p.throughput.fps, 1), to_string(p.instance));
    }
    std::cout << table << "\n";

    // 5. Device fit.
    auto fit = flow.device_fit();
    if (fit.has_best) {
        std::cout << "=== best design for " << flow.device().name << " ===\n"
                  << to_string(fit.best.instance) << "\n"
                  << format_fixed(fit.best.throughput.fps, 1) << " fps, "
                  << format_fixed(fit.best.estimated_area_luts / 1000.0, 1)
                  << " kLUTs (estimated), bottleneck: "
                  << fit.best.throughput.bottleneck << "\n";
    }
    return 0;
}
