// Chambolle total-variation denoising: the paper's second case study.
//
// Runs the dual fixed-point iteration on a noisy image via the generated
// cone architecture, recovers the primal (denoised) image
// u = g - lambda * div(p), and reports the total-variation decrease. Also
// demonstrates the flow on multi-field stencils (p1, p2 advance; g is a
// constant input).
#include <cmath>
#include <iostream>

#include "core/flow.hpp"
#include "grid/frame_io.hpp"
#include "grid/frame_ops.hpp"
#include "sim/arch_sim.hpp"
#include "support/text.hpp"

namespace {

using namespace islhls;

// Total variation (isotropic, forward differences, clamp boundary).
double total_variation(const Frame& u) {
    double tv = 0.0;
    for (int y = 0; y < u.height(); ++y) {
        for (int x = 0; x < u.width(); ++x) {
            const double gx = u.sample(x + 1, y, Boundary::clamp) - u.at(x, y);
            const double gy = u.sample(x, y + 1, Boundary::clamp) - u.at(x, y);
            tv += std::sqrt(gx * gx + gy * gy);
        }
    }
    return tv;
}

// Primal reconstruction u = g - lambda * div p (lambda = 8 as in the kernel).
Frame reconstruct(const Frame& g, const Frame& p1, const Frame& p2) {
    Frame u(g.width(), g.height());
    for (int y = 0; y < g.height(); ++y) {
        for (int x = 0; x < g.width(); ++x) {
            const double div = p1.at(x, y) - p1.sample(x - 1, y, Boundary::clamp) +
                               p2.at(x, y) - p2.sample(x, y - 1, Boundary::clamp);
            u.at(x, y) = g.at(x, y) - 8.0 * div;
        }
    }
    return u;
}

}  // namespace

int main() {
    Flow_options options;
    options.iterations = 20;  // TV needs more fixed-point steps than blur
    options.frame_width = 192;
    options.frame_height = 144;
    options.device = "xc6vlx760";
    options.space.max_depth = 4;

    const Kernel_def& kernel = kernel_by_name("chambolle");
    Hls_flow flow = Hls_flow::from_kernel(kernel, options);
    std::cout << flow.describe() << "\n";

    // Clean scene + noise = the denoising workload.
    const Frame clean = make_synthetic_scene(options.frame_width,
                                             options.frame_height, 77);
    Frame noisy = clean;
    {
        const Frame noise = make_noise(options.frame_width, options.frame_height,
                                       1234, -12.0, 12.0);
        for (std::size_t i = 0; i < noisy.data().size(); ++i) {
            noisy.data()[i] =
                std::min(255.0, std::max(0.0, noisy.data()[i] + noise.data()[i]));
        }
    }
    save_pgm(noisy, "chambolle_noisy.pgm");
    std::cout << "noisy PSNR vs clean: " << format_fixed(psnr(clean, noisy), 2)
              << " dB, TV = " << format_fixed(total_variation(noisy) / 1e3, 1)
              << "k\n";

    // Pick the best architecture and run it.
    const auto fit = flow.device_fit();
    std::cout << "device fit: " << to_string(fit.best.instance) << " -> "
              << format_fixed(fit.best.throughput.fps, 1) << " fps estimated\n";
    const Frame_set initial = kernel.make_initial(noisy);
    const Arch_sim_result sim =
        simulate_architecture(flow.cones(), fit.best.instance, initial, {});

    const Frame denoised = reconstruct(initial.field("g"),
                                       sim.final_state.field("p1"),
                                       sim.final_state.field("p2"));
    save_pgm(denoised, "chambolle_denoised.pgm");

    const double tv_before = total_variation(noisy);
    const double tv_after = total_variation(denoised);
    std::cout << "denoised PSNR vs clean: " << format_fixed(psnr(clean, denoised), 2)
              << " dB, TV = " << format_fixed(tv_after / 1e3, 1) << "k ("
              << format_fixed(100.0 * (1.0 - tv_after / tv_before), 1)
              << "% reduction)\n";
    std::cout << "wrote chambolle_noisy.pgm, chambolle_denoised.pgm\n";
    return tv_after < tv_before ? 0 : 1;
}
