// Bringing your own C kernel to the flow.
//
// The flow consumes plain C in the canonical ISL form; this example defines
// a sharpening diffusion the library does not ship, walks through what the
// dependency analysis extracted, validates the cone against a direct
// software interpretation of the kernel, and explores the design space.
#include <iostream>

#include "core/flow.hpp"
#include "grid/frame_ops.hpp"
#include "sim/arch_sim.hpp"
#include "sim/golden.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

namespace {

// An edge-enhancing ISL: unsharp masking with a clamp against overshoot.
const char* my_kernel = R"(
void unsharp_step(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float blur = (u[y-1][x-1] + 2.0f*u[y-1][x] + u[y-1][x+1]
                        + 2.0f*u[y][x-1] + 4.0f*u[y][x] + 2.0f*u[y][x+1]
                        + u[y+1][x-1] + 2.0f*u[y+1][x] + u[y+1][x+1]) * 0.0625f;
            float sharp = u[y][x] + 0.3f * (u[y][x] - blur);
            u_out[y][x] = fminf(fmaxf(sharp, 0.0f), 255.0f);
        }
    }
}
)";

}  // namespace

int main() {
    using namespace islhls;

    Flow_options options;
    options.iterations = 5;
    options.frame_width = 160;
    options.frame_height = 120;
    options.space.max_window = 6;
    options.space.max_depth = 3;

    Hls_flow flow = Hls_flow::from_source(my_kernel, options);
    std::cout << "=== what the symbolic execution extracted ===\n"
              << flow.describe() << "\n";

    // Validate: cone architecture vs golden IR interpretation.
    const Frame scene = make_synthetic_scene(160, 120, 5);
    Frame_set initial(160, 120);
    initial.add_field("u", scene);
    const auto fit = flow.device_fit();
    const Arch_sim_result sim =
        simulate_architecture(flow.cones(), fit.best.instance, initial, {});
    const Frame_set golden =
        run_ghost_ir(flow.step(), initial, options.iterations, Boundary::clamp);
    std::cout << "architecture vs golden max |diff| = "
              << max_abs_diff(sim.final_state.field("u"), golden.field("u")) << "\n\n";

    // The interesting cones at a glance.
    Table table({"cone", "registers", "inputs", "reuse", "est kLUT"});
    for (int d = 1; d <= 3; ++d) {
        const Cone_stats& stats = flow.cones().stats(4, d);
        table.add(to_string(stats.spec), stats.register_count, stats.input_count,
                  format_fixed(stats.reuse_factor(), 2),
                  format_fixed(
                      flow.explorer().evaluator().estimated_cone_area(4, d) / 1e3, 1));
    }
    std::cout << table << "\n";

    std::cout << "best fit on " << flow.device().name << ": "
              << to_string(fit.best.instance) << " -> "
              << format_fixed(fit.best.throughput.fps, 1) << " fps\n";
    return 0;
}
