// Scientific-computing ISL: explicit heat diffusion.
//
// Shows the flow on a numerical-PDE workload rather than a multimedia one:
// a hot spot diffusing through a plate, run through the cone architecture
// and checked for (a) agreement with the golden model and (b) the physics —
// heat is conserved away from the boundary and the peak decays
// monotonically. Also compares device fits across two FPGA generations.
#include <iostream>

#include "core/flow.hpp"
#include "grid/frame_ops.hpp"
#include "sim/arch_sim.hpp"
#include "sim/golden.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
    using namespace islhls;

    Flow_options options;
    options.iterations = 12;
    options.frame_width = 128;
    options.frame_height = 128;
    options.space.max_depth = 4;
    options.space.max_window = 6;

    const Kernel_def& kernel = kernel_by_name("heat");
    Hls_flow flow = Hls_flow::from_kernel(kernel, options);
    std::cout << flow.describe() << "\n";

    // A centered hot spot on a cold plate (zero-flux boundary via clamp).
    const Frame plate = make_impulse(128, 128, 64, 64, 10000.0);
    const Frame_set initial = kernel.make_initial(plate);

    const auto fit = flow.device_fit();
    const Arch_sim_result sim =
        simulate_architecture(flow.cones(), fit.best.instance, initial, {});
    const Frame_set golden =
        run_ghost_ir(flow.step(), initial, options.iterations, kernel.boundary);
    std::cout << "architecture vs golden max |diff| = "
              << max_abs_diff(sim.final_state.field("u"), golden.field("u")) << "\n";

    // Physics checks on the simulated result.
    const Frame& u = sim.final_state.field("u");
    const double total = element_sum(u);
    double peak = 0.0;
    for (double v : u.data()) peak = std::max(peak, v);
    std::cout << "heat conserved: " << format_fixed(total, 1) << " / 10000.0 ("
              << format_fixed(100.0 * total / 10000.0, 2) << "%)\n"
              << "peak decayed from 10000 to " << format_fixed(peak, 1) << "\n";

    // The same kernel fitted to different devices.
    Table table({"device", "best architecture", "fps", "kLUTs"});
    for (const char* device : {"xc2vp30", "xc6vlx760", "xc7vx485t"}) {
        Flow_options per_device = options;
        per_device.device = device;
        Hls_flow f = Hls_flow::from_kernel(kernel, per_device);
        const auto df = f.device_fit();
        if (df.has_best) {
            table.add(device, to_string(df.best.instance),
                      format_fixed(df.best.throughput.fps, 1),
                      format_fixed(df.best.estimated_area_luts / 1e3, 1));
        } else {
            table.add(device, "no feasible design", "-", "-");
        }
    }
    std::cout << "\n" << table;
    return 0;
}
