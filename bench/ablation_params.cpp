// Ablation: sensitivity of the reproduced claims to the calibrated model
// constants (EXPERIMENTS.md, "Tuned model constants").
//
// Sweeps each of the four load-bearing throughput/area constants around its
// calibrated value and reports whether the two headline claims survive:
//   A. IGF divisor depths (1,2,5) beat non-divisor depths (3,4) on the V6;
//   B. Chambolle peak stays within 2x of the paper's ~24 fps.
// Robust claims hold across the whole sweep; fragile ones only near the
// calibration point — the table makes that explicit.
#include <functional>

#include "bench_common.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

namespace {

using namespace islhls;

struct Claim_result {
    bool divisors_win = false;
    double igf_peak = 0.0;
    double chambolle_peak = 0.0;
};

Claim_result evaluate_claims(const Flow_options& options) {
    Claim_result result;
    Hls_flow igf = Hls_flow::from_kernel(kernel_by_name("igf"), options);
    const auto fit = igf.device_fit();
    std::map<int, double> best_per_depth;
    const Space_options& space = igf.explorer().space();
    for (const auto& cell : fit.grid) {
        if (cell.valid) {
            best_per_depth[cell.primary_depth] =
                std::max(best_per_depth[cell.primary_depth],
                         cell.eval.throughput.fps);
        }
    }
    (void)space;
    const double worst_divisor =
        std::min({best_per_depth[1], best_per_depth[2], best_per_depth[5]});
    const double best_nondivisor = std::max(best_per_depth[3], best_per_depth[4]);
    result.divisors_win = worst_divisor > best_nondivisor;
    result.igf_peak = fit.has_best ? fit.best.throughput.fps : 0.0;

    Hls_flow chamb = Hls_flow::from_kernel(kernel_by_name("chambolle"), options);
    const auto cfit = chamb.device_fit();
    result.chambolle_peak = cfit.has_best ? cfit.best.throughput.fps : 0.0;
    return result;
}

}  // namespace

int main() {
    using namespace islhls_bench;

    std::cout << "=== Ablation: model-constant sensitivity ===\n\n";

    struct Sweep {
        const char* name;
        std::vector<double> values;
        std::function<void(Flow_options&, double)> apply;
    };
    const std::vector<Sweep> sweeps{
        {"core_read_ports", {4, 8, 16},
         [](Flow_options& o, double v) { o.throughput.core_read_ports = v; }},
        {"global_read_ports", {16, 32, 64},
         [](Flow_options& o, double v) { o.throughput.global_read_ports = v; }},
        {"class_switch_cycles", {0, 60, 120, 240},
         [](Flow_options& o, double v) { o.throughput.class_switch_cycles = v; }},
    };

    Table table({"constant", "value", "IGF peak fps", "divisors win", "Chambolle peak"});
    for (const Sweep& sweep : sweeps) {
        for (double v : sweep.values) {
            Flow_options options = paper_options();
            sweep.apply(options, v);
            const Claim_result r = evaluate_claims(options);
            table.add(sweep.name, v, format_fixed(r.igf_peak, 1),
                      r.divisors_win ? "yes" : "no",
                      format_fixed(r.chambolle_peak, 1));
        }
    }
    std::cout << table << "\n";

    // What the ablation is meant to demonstrate:
    //   1. the claims hold at the calibrated point;
    //   2. the divisor effect is *caused* by the remainder-class penalty —
    //      turning the class-switch drain off must break it (if it held
    //      anyway, the penalty would be irrelevant and the paper's
    //      explanation wrong for this model);
    //   3. Chambolle's peak stays in the paper band across the bandwidth
    //      neighbourhood (it is not a knife-edge artifact).
    report_claim("claims hold at the calibrated point",
                 evaluate_claims(paper_options()).divisors_win);
    {
        Flow_options no_penalty = paper_options();
        no_penalty.throughput.class_switch_cycles = 0.0;
        report_claim("removing the class-switch penalty breaks the divisor claim "
                     "(the paper's explanation is load-bearing)",
                     !evaluate_claims(no_penalty).divisors_win);
    }
    {
        bool in_band = true;
        for (double ports : {16.0, 32.0, 64.0}) {
            Flow_options o = paper_options();
            o.throughput.global_read_ports = ports;
            const double peak = evaluate_claims(o).chambolle_peak;
            in_band = in_band && peak > 12.0 && peak < 48.0;
        }
        report_claim("Chambolle peak stays within 2x of the paper's 24 fps across "
                     "the bandwidth sweep",
                     in_band);
    }
    return 0;
}
