// Figure 10 reproduction: Chambolle throughput on the XC6VLX760 per output
// window area and cone depth (N = 10, 1024x768).
//
// Paper claims examined:
//   - peak around 24 fps on 1024x768;
//   - the largest output window is NOT automatically the best: core-count
//     quantization makes a smaller window win within a depth series (the
//     paper's 8x8-with-two-cones vs 9x9-with-one observation);
//   - Chambolle is several times slower than IGF on the same device.
#include <map>

#include "bench_common.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
    using namespace islhls;
    using namespace islhls_bench;

    std::cout << "=== Fig. 10: Chambolle throughput on xc6vlx760 (fps) ===\n\n";

    Hls_flow flow = Hls_flow::from_kernel(kernel_by_name("chambolle"), paper_options());
    const auto fit = flow.device_fit();
    const Space_options& space = flow.explorer().space();

    Table table({"depth \\ window area", "1", "4", "9", "16", "25", "36", "49", "64",
                 "81"});
    // fps and core count per (d, w) for the window-quantization claim.
    std::map<std::pair<int, int>, const Arch_evaluation*> cells;
    for (int d = 1; d <= space.max_depth; ++d) {
        std::vector<std::string> row{cat(d, " iteration", d > 1 ? "s" : "")};
        for (int w = 1; w <= space.max_window; ++w) {
            const auto& cell = fit.grid[static_cast<std::size_t>((w - 1) * space.max_depth +
                                                                 (d - 1))];
            if (cell.valid) {
                row.push_back(format_fixed(cell.eval.throughput.fps, 1));
                cells[{d, w}] = &cell.eval;
            } else {
                row.push_back("-");
            }
        }
        table.add_row(row);
    }
    std::cout << table << "\n";
    if (fit.has_best) {
        std::cout << "best: " << to_string(fit.best.instance) << " -> "
                  << format_fixed(fit.best.throughput.fps, 1)
                  << " fps; paper: ~24 fps with 8x8 windows\n\n";
    }

    report_claim(cat("peak within 2x of the paper's ~24 fps: ",
                     format_fixed(fit.best.throughput.fps, 1)),
                 fit.has_best && fit.best.throughput.fps > 12.0 &&
                     fit.best.throughput.fps < 48.0);

    // Window-quantization effect: within some depth series, 8x8 beats 9x9.
    bool smaller_window_wins = false;
    int witness_depth = 0;
    for (int d = 1; d <= space.max_depth; ++d) {
        const auto w8 = cells.find({d, 8});
        const auto w9 = cells.find({d, 9});
        if (w8 != cells.end() && w9 != cells.end() &&
            w8->second->throughput.fps > w9->second->throughput.fps) {
            smaller_window_wins = true;
            witness_depth = d;
        }
    }
    report_claim(cat("8x8 outperforms 9x9 within a depth series (depth ",
                     witness_depth, ") — the paper's core-fit quantization effect"),
                 smaller_window_wins);

    Hls_flow igf = Hls_flow::from_kernel(kernel_by_name("igf"), paper_options());
    const auto igf_fit = igf.device_fit();
    report_claim(cat("Chambolle is 3-12x slower than IGF on the same device (",
                     format_fixed(igf_fit.best.throughput.fps /
                                      fit.best.throughput.fps, 1),
                     "x; paper: ~4.6x)"),
                 igf_fit.best.throughput.fps > 3.0 * fit.best.throughput.fps &&
                     igf_fit.best.throughput.fps < 12.0 * fit.best.throughput.fps);
    return 0;
}
