// Shared configuration for the paper-reproduction benches.
//
// Every bench binary regenerates one table or figure of the DAC'13 paper
// with the same workload parameters (1024x768 frames, N = 10 iterations,
// output windows 1..9, cone depths 1..5, Xilinx Virtex-6 XC6VLX760) and
// finishes with a PASS/CHECK summary of the qualitative claims the paper
// makes about that artifact. See EXPERIMENTS.md for the recorded outcomes.
#pragma once

#include <iostream>
#include <string>

#include "core/flow.hpp"

namespace islhls_bench {

// The paper's evaluation setup (Sec. 4).
inline islhls::Flow_options paper_options() {
    islhls::Flow_options options;
    options.iterations = 10;
    options.frame_width = 1024;
    options.frame_height = 768;
    options.device = "xc6vlx760";
    options.space.max_window = 9;
    options.space.max_depth = 5;
    return options;
}

// Uniform PASS/INFO line formatting for the claim checks.
inline int report_claim(const std::string& claim, bool holds) {
    std::cout << (holds ? "[PASS] " : "[DEVIATION] ") << claim << "\n";
    return holds ? 0 : 1;
}

}  // namespace islhls_bench
