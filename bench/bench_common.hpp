// Shared configuration for the paper-reproduction benches.
//
// Every bench binary regenerates one table or figure of the DAC'13 paper
// with the same workload parameters (1024x768 frames, N = 10 iterations,
// output windows 1..9, cone depths 1..5, Xilinx Virtex-6 XC6VLX760) and
// finishes with a PASS/CHECK summary of the qualitative claims the paper
// makes about that artifact. See EXPERIMENTS.md for the recorded outcomes.
#pragma once

#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>

#include "core/flow.hpp"

namespace islhls_bench {

// The paper's evaluation setup (Sec. 4).
inline islhls::Flow_options paper_options() {
    islhls::Flow_options options;
    options.iterations = 10;
    options.frame_width = 1024;
    options.frame_height = 768;
    options.device = "xc6vlx760";
    options.space.max_window = 9;
    options.space.max_depth = 5;
    return options;
}

// Uniform PASS/INFO line formatting for the claim checks.
inline int report_claim(const std::string& claim, bool holds) {
    std::cout << (holds ? "[PASS] " : "[DEVIATION] ") << claim << "\n";
    return holds ? 0 : 1;
}

// Atomic perf-record writer shared by the BENCH_*.json producers: `body`
// streams the record into a temp file, which replaces `path` only on a
// fully flushed write — an aborted run never leaves a torn record. Returns
// false (after a diagnostic) when the record could not be written, so the
// caller can fail the bench rather than let CI pass on a stale file.
inline bool write_json_record(const std::string& path,
                              const std::function<void(std::ostream&)>& body) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        body(out);
        out.flush();
        if (!out) {
            std::cerr << "failed to write " << tmp << "\n";
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::cerr << "failed to move " << tmp << " to " << path << "\n";
        return false;
    }
    return true;
}

}  // namespace islhls_bench
