// Simulation throughput: compiled scanline engine vs the legacy per-pixel
// interpreter, and temporal-tiled vs double-buffered execution.
//
// Measures Mcells/s (one cell = one frame element advanced by one
// iteration) on the heat-equation, iterative-Gaussian-filter and Chambolle
// kernels, then checks the engine's contracts:
//
//   1. correctness — the engine's frames are byte-identical to the legacy
//      interpreter's on every kernel;
//   2. determinism — 2- and 8-thread runs are byte-identical to the serial
//      engine run;
//   3. speed — the single-thread engine is >= 5x the legacy interpreter;
//   4. tiling — on a frame pair that overflows the last-level cache,
//      temporal-tiled execution (iterations fused over row bands) is
//      >= 1.3x the untiled single-thread engine and byte-identical to it.
//
// Thread scaling at 8 threads is measured and recorded, but only gated when
// the host actually has >= 4 hardware threads (the same measured-not-gated
// policy micro_dse_parallel applies to wall times on small CI machines).
//
// With --json <path> the measurements are written as BENCH_sim.json-style
// records (via a temp file + rename, so aborted runs never leave a torn
// file); tools/run_benches.sh wires this into the repo's perf trajectory,
// and tools/check_bench.py gates CI on the host-portable ratios recorded
// under "gated_metrics".
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "grid/frame_ops.hpp"
#include "kernels/kernels.hpp"
#include "sim/exec_engine.hpp"
#include "sim/fixed_exec.hpp"
#include "sim/golden.hpp"
#include "sim/tape_lanes.hpp"
#include "support/cache_info.hpp"
#include "support/parallel.hpp"
#include "support/text.hpp"
#include "symexec/executor.hpp"

namespace {

using namespace islhls;

struct Kernel_result {
    std::string name;
    double legacy_mcells = 0.0;         // interpreter, small frame
    double engine_small_mcells = 0.0;   // engine 1t on the SAME small workload
    double engine_1t_mcells = 0.0;      // engine 1t, large frame (headline)
    double engine_8t_mcells = 0.0;      // engine 8t, large frame
    bool engine_matches_legacy = false;
    bool threads_byte_identical = false;
    // Like-for-like: both sides measured on the identical frame and
    // iteration count.
    double speedup_1t() const {
        return legacy_mcells > 0.0 ? engine_small_mcells / legacy_mcells : 0.0;
    }
    double scaling_8t() const {
        return engine_1t_mcells > 0.0 ? engine_8t_mcells / engine_1t_mcells : 0.0;
    }
};

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
}

// Minimum wall time of `reps` runs of `body`. The gated metrics are ratios
// of two such timings; min-of-N discards the one-sided noise a busy host
// injects (there is no mechanism that makes a run spuriously fast), which
// keeps the committed baselines comparable across reruns.
template <typename Fn>
double min_seconds(int reps, const Fn& body) {
    double best = 1e300;
    for (int i = 0; i < reps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        body();
        best = std::min(best, seconds_since(t0));
    }
    return best;
}

bool sets_byte_identical(const Frame_set& a, const Frame_set& b) {
    if (a.names() != b.names()) return false;
    for (const std::string& name : a.names()) {
        const Frame& fa = a.field(name);
        const Frame& fb = b.field(name);
        if (fa.width() != fb.width() || fa.height() != fb.height()) return false;
        if (std::memcmp(fa.data().data(), fb.data().data(),
                        fa.element_count() * sizeof(double)) != 0) {
            return false;
        }
    }
    return true;
}

// The speedup gate compares both paths on the identical small workload
// (the interpreter is too slow for more); the engine is additionally
// measured on a larger frame for its headline and threaded throughput.
constexpr int kLegacyW = 320, kLegacyH = 240, kLegacyIters = 2;
constexpr int kEngineW = 512, kEngineH = 384, kEngineIters = 12;

// Temporal tiling is a memory-traffic optimization, so its measurement
// needs a frame pair that genuinely overflows the last-level cache (hosts
// in the fleet range up to 260 MiB of L3): 2048x12288 doubles are 192 MiB
// per buffer, 384 MiB double-buffered. Jacobi is the most memory-bound
// built-in kernel (4-point stencil, ~5 flops per cell), so it shows the
// traffic reduction most clearly; depth 8 empirically beats 16 and 32 on
// this shape (deeper fusing adds halo recompute faster than it removes
// traffic).
constexpr int kTiledW = 2048, kTiledH = 12288, kTiledIters = 32;
constexpr int kTiledDepth = 8;
constexpr const char* kTiledKernel = "jacobi";

struct Tiled_result {
    double untiled_mcells = 0.0;  // engine 1t, tile depth 1
    double tiled_mcells = 0.0;    // engine 1t, fused iterations
    int depth = 0;
    bool byte_identical = false;
    double speedup() const {
        return untiled_mcells > 0.0 ? tiled_mcells / untiled_mcells : 0.0;
    }
};

// Multi-thread tiled scaling: the same out-of-cache tiled workload fanned
// across 4 threads vs 1 thread. Only measured (and only gated, under
// "optional_gated_metrics") when the host actually has >= 4 hardware
// threads; smaller hosts skip it with a note and the committed baseline
// tolerates its absence.
struct Tiled_scaling_result {
    bool measured = false;
    double tiled_1t_mcells = 0.0;
    double tiled_4t_mcells = 0.0;
    bool byte_identical = false;
    double scaling() const {
        return tiled_1t_mcells > 0.0 ? tiled_4t_mcells / tiled_1t_mcells : 0.0;
    }
};

// Measured DRAM copy bandwidth (large-buffer memcpy, min-of-N), the roofline
// context for the streaming benches: an untiled double sweep moves ~3 words
// per cell per iteration (read + allocate + write back), so
// bandwidth / 24 B is the memory-bound Mcells/s ceiling the untiled tiled-
// workload numbers should be read against. Absolute and host-specific —
// reported, never gated.
struct Dram_result {
    double copy_gbps = 0.0;
    double untiled_roofline_mcells() const { return copy_gbps * 1e9 / 24.0 / 1e6; }
};

Dram_result bench_dram() {
    constexpr std::size_t kBytes = 128u << 20;
    std::vector<std::uint64_t> src(kBytes / sizeof(std::uint64_t), 1);
    std::vector<std::uint64_t> dst(src.size(), 0);
    const double best_s = min_seconds(3, [&] {
        std::memcpy(dst.data(), src.data(), kBytes);
        // Keep the copy observable so the optimizer cannot drop it.
        if (dst[dst.size() / 2] == ~std::uint64_t{0}) std::cout << "";
    });
    Dram_result r;
    // One memcpy moves 2 bytes per copied byte (read + write).
    r.copy_gbps = 2.0 * static_cast<double>(kBytes) / std::max(best_s, 1e-9) / 1e9;
    return r;
}

Tiled_result bench_tiled() {
    const Kernel_def& kernel = kernel_by_name(kTiledKernel);
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Exec_engine engine(step);

    Tiled_result r;
    r.depth = kTiledDepth;
    const Frame_set big =
        kernel.make_initial(make_synthetic_scene(kTiledW, kTiledH, 5));
    const double cells =
        static_cast<double>(kTiledW) * kTiledH * static_cast<double>(kTiledIters);

    // Pin the band budget to the historical 8 MiB so this anchor measures
    // the same schedule on every host regardless of what the cache probe
    // reports (results are byte-identical at any budget; only the timing
    // comparison needs the schedule held fixed).
    Exec_options tiled_opts{1, r.depth, 0};
    tiled_opts.budgets.band_bytes = 8u << 20;

    // The gated ratio takes min-of-2 per mode (each run is seconds long, so
    // two reps suffice to drop a one-off slow run); the identity-pair runs
    // double as the first timing sample of each mode.
    auto t0 = std::chrono::steady_clock::now();
    const Frame_set untiled =
        engine.run(big, kTiledIters, kernel.boundary, Exec_options{1, 1, 0});
    const double untiled_s =
        std::min(seconds_since(t0), min_seconds(1, [&] {
                     engine.run(big, kTiledIters, kernel.boundary, Exec_options{1, 1, 0});
                 }));
    t0 = std::chrono::steady_clock::now();
    const Frame_set tiled =
        engine.run(big, kTiledIters, kernel.boundary, tiled_opts);
    const double tiled_s =
        std::min(seconds_since(t0), min_seconds(1, [&] {
                     engine.run(big, kTiledIters, kernel.boundary, tiled_opts);
                 }));
    r.byte_identical = sets_byte_identical(untiled, tiled);
    r.untiled_mcells = cells / std::max(untiled_s, 1e-9) / 1e6;
    r.tiled_mcells = cells / std::max(tiled_s, 1e-9) / 1e6;
    return r;
}

Tiled_scaling_result bench_tiled_scaling(int hardware_threads) {
    Tiled_scaling_result r;
    if (hardware_threads < 4) return r;
    r.measured = true;
    const Kernel_def& kernel = kernel_by_name(kTiledKernel);
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Exec_engine engine(step);
    const Frame_set big =
        kernel.make_initial(make_synthetic_scene(kTiledW, kTiledH, 5));
    const double cells =
        static_cast<double>(kTiledW) * kTiledH * static_cast<double>(kTiledIters);

    // Same pinned band budget as bench_tiled, so 1t-vs-4t compares the same
    // schedule and only the thread count varies.
    Exec_options opts_1t{1, kTiledDepth, 0};
    opts_1t.budgets.band_bytes = 8u << 20;
    Exec_options opts_4t{4, kTiledDepth, 0};
    opts_4t.budgets.band_bytes = 8u << 20;

    auto t0 = std::chrono::steady_clock::now();
    const Frame_set tiled_1t = engine.run(big, kTiledIters, kernel.boundary, opts_1t);
    const double s_1t =
        std::min(seconds_since(t0), min_seconds(1, [&] {
                     engine.run(big, kTiledIters, kernel.boundary, opts_1t);
                 }));
    t0 = std::chrono::steady_clock::now();
    const Frame_set tiled_4t = engine.run(big, kTiledIters, kernel.boundary, opts_4t);
    const double s_4t =
        std::min(seconds_since(t0), min_seconds(1, [&] {
                     engine.run(big, kTiledIters, kernel.boundary, opts_4t);
                 }));
    r.byte_identical = sets_byte_identical(tiled_1t, tiled_4t);
    r.tiled_1t_mcells = cells / std::max(s_1t, 1e-9) / 1e6;
    r.tiled_4t_mcells = cells / std::max(s_4t, 1e-9) / 1e6;
    return r;
}

// Fixed vs double on a wide frame, both through the engine's interior fast
// path at one thread: the single-thread Mcells/s anchor of both domains and
// the gated interior ratio. The lane-blocked fixed interior runs the shared
// per-ISA kernels (sim/tape_lanes.hpp), which is what closes the historical
// gap to the double engine; the ratio is same-host and gated. The identity
// check reruns the fixed side at a forced narrow column panel — panels and
// lane blocks must be invisible in the raw words.
constexpr int kWideW = 4096, kWideH = 512, kWideIters = 8;
constexpr const char* kWideKernel = "heat";
constexpr Fixed_format kWideFormat{10, 6};

struct Wide_result {
    double double_mcells = 0.0;
    double fixed_mcells = 0.0;
    bool word_identical = false;
    double ratio() const {
        return double_mcells > 0.0 ? fixed_mcells / double_mcells : 0.0;
    }
};

Wide_result bench_wide() {
    const Kernel_def& kernel = kernel_by_name(kWideKernel);
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Exec_engine engine(step);
    const Frame_set big = kernel.make_initial(make_synthetic_scene(kWideW, kWideH, 5));
    const double cells =
        static_cast<double>(kWideW) * kWideH * static_cast<double>(kWideIters);

    Wide_result r;
    const double double_s = min_seconds(3, [&] {
        engine.run(big, kWideIters, kernel.boundary, Exec_options{1, 1, 0});
    });
    r.double_mcells = cells / std::max(double_s, 1e-9) / 1e6;

    const Fixed_frame_result fixed_out =
        engine.run_fixed(big, kWideIters, kernel.boundary, kWideFormat);
    const double fixed_s = min_seconds(3, [&] {
        engine.run_fixed(big, kWideIters, kernel.boundary, kWideFormat);
    });
    r.fixed_mcells = cells / std::max(fixed_s, 1e-9) / 1e6;

    Exec_options paneled{1, 1, 0};
    paneled.panel_cols = 64;
    const Fixed_frame_result fixed_paneled =
        engine.run_fixed(big, kWideIters, kernel.boundary, kWideFormat, paneled);
    r.word_identical = true;
    for (std::size_t s = 0; s < step.state_fields().size(); ++s) {
        if (std::memcmp(fixed_out.raw[s].data(), fixed_paneled.raw[s].data(),
                        fixed_out.raw[s].size() * sizeof(std::int64_t)) != 0) {
            r.word_identical = false;
        }
    }
    return r;
}

// Fixed-point row engine vs the scalar reference: the per-pixel
// run_fixed_raw sweep (quantize once, interpret every pixel, fresh register
// file per call) against the integer row path over the same raw words. Both
// sides advance identical raw frames, so the word-identity check doubles as
// the correctness gate.
constexpr const char* kFixedKernel = "heat";
constexpr Fixed_format kFixedFormat{10, 6};

struct Fixed_result {
    double reference_mcells = 0.0;  // per-pixel run_fixed_raw sweep
    double engine_mcells = 0.0;     // integer row engine, 1 thread
    bool word_identical = false;
    double speedup() const {
        return reference_mcells > 0.0 ? engine_mcells / reference_mcells : 0.0;
    }
};

Fixed_result bench_fixed() {
    const Kernel_def& kernel = kernel_by_name(kFixedKernel);
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Exec_engine engine(step);
    const Frame_set small =
        kernel.make_initial(make_synthetic_scene(kLegacyW, kLegacyH, 5));
    const double cells = kLegacyW * kLegacyH * static_cast<double>(kLegacyIters);

    Fixed_result r;
    // The reference is the product's own per-pixel sweep (sim/golden.hpp),
    // shared with the row engine's memcmp test suite.
    auto t0 = std::chrono::steady_clock::now();
    const Fixed_frame_result reference = run_ir_fixed_reference(
        step, small, kLegacyIters, kernel.boundary, kFixedFormat);
    const double reference_s =
        std::min(seconds_since(t0), min_seconds(1, [&] {
                     run_ir_fixed_reference(step, small, kLegacyIters,
                                            kernel.boundary, kFixedFormat);
                 }));
    r.reference_mcells = cells / std::max(reference_s, 1e-9) / 1e6;

    constexpr int kRepeats = 10;
    const Fixed_frame_result engine_out =
        engine.run_fixed(small, kLegacyIters, kernel.boundary, kFixedFormat);
    const double engine_s = min_seconds(kRepeats, [&] {
        engine.run_fixed(small, kLegacyIters, kernel.boundary, kFixedFormat);
    });
    r.engine_mcells = cells / std::max(engine_s, 1e-9) / 1e6;

    r.word_identical = true;
    for (std::size_t s = 0; s < step.state_fields().size(); ++s) {
        if (std::memcmp(reference.raw[s].data(), engine_out.raw[s].data(),
                        reference.raw[s].size() * sizeof(std::int64_t)) != 0) {
            r.word_identical = false;
        }
    }
    return r;
}

Kernel_result bench_kernel(const std::string& name) {
    const Kernel_def& kernel = kernel_by_name(name);
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Exec_engine engine(step);

    Kernel_result r;
    r.name = name;

    // Legacy interpreter throughput + the correctness frame pair. The
    // legacy/engine pair feeds a gated ratio, so both sides are min-of-N;
    // the identity-pair run doubles as the first timing sample (comparing
    // frames afterwards does not perturb the run itself).
    const Frame_set small = kernel.make_initial(make_synthetic_scene(kLegacyW, kLegacyH, 5));
    auto legacy_t0 = std::chrono::steady_clock::now();
    const Frame_set legacy = run_ir_reference(step, small, kLegacyIters, kernel.boundary);
    const double legacy_s =
        std::min(seconds_since(legacy_t0), min_seconds(2, [&] {
                     run_ir_reference(step, small, kLegacyIters, kernel.boundary);
                 }));
    r.legacy_mcells =
        kLegacyW * kLegacyH * static_cast<double>(kLegacyIters) / legacy_s / 1e6;

    // Engine on the identical small workload: the like-for-like speedup
    // pair. Each rep is milliseconds, so many reps both outgrow the timer
    // resolution trap (the min is still a full run) and sample the noise.
    constexpr int kSmallRepeats = 10;
    const Frame_set engine_small = engine.run(small, kLegacyIters, kernel.boundary, 1);
    r.engine_matches_legacy = sets_byte_identical(legacy, engine_small);
    const double engine_small_s = min_seconds(kSmallRepeats, [&] {
        engine.run(small, kLegacyIters, kernel.boundary, 1);
    });
    const double cells_small = kLegacyW * kLegacyH * static_cast<double>(kLegacyIters);
    r.engine_small_mcells = cells_small / std::max(engine_small_s, 1e-9) / 1e6;

    // Engine throughput on the larger frame (single thread, then 8 threads).
    const Frame_set big = kernel.make_initial(make_synthetic_scene(kEngineW, kEngineH, 5));
    auto t0 = std::chrono::steady_clock::now();
    const Frame_set engine_1t = engine.run(big, kEngineIters, kernel.boundary, 1);
    const double engine_1t_s = seconds_since(t0);
    const double cells_big = kEngineW * kEngineH * static_cast<double>(kEngineIters);
    r.engine_1t_mcells = cells_big / std::max(engine_1t_s, 1e-9) / 1e6;

    t0 = std::chrono::steady_clock::now();
    const Frame_set engine_8t = engine.run(big, kEngineIters, kernel.boundary, 8);
    const double engine_8t_s = seconds_since(t0);
    r.engine_8t_mcells = cells_big / std::max(engine_8t_s, 1e-9) / 1e6;

    const Frame_set engine_2t = engine.run(big, kEngineIters, kernel.boundary, 2);
    r.threads_byte_identical = sets_byte_identical(engine_1t, engine_2t) &&
                               sets_byte_identical(engine_1t, engine_8t);
    return r;
}

// The bench fails when the record could not be written, so CI never passes
// with a missing or stale perf record.
//
// "gated_metrics" carries the values tools/check_bench.py diffs against the
// committed baseline. They are deliberately same-host ratios (engine vs
// interpreter, tiled vs untiled), not absolute Mcells/s: absolute numbers
// shift with whatever machine CI lands on, ratios only shift when the code
// regresses.
bool write_json(const std::string& path, const std::vector<Kernel_result>& results,
                const Tiled_result& tiled, const Fixed_result& fixed,
                const Wide_result& wide, const Dram_result& dram,
                const Tiled_scaling_result& scaling, int hardware_threads) {
    return islhls_bench::write_json_record(path, [&](std::ostream& out) {
        out << "{\n";
        out << "  \"bench\": \"micro_sim_throughput\",\n";
        out << "  \"unit\": \"Mcells/s\",\n";
        out << "  \"hardware_threads\": " << hardware_threads << ",\n";
        out << "  \"cache_topology\": \"" << to_string(cache_topology()) << "\",\n";
        out << "  \"tape_lane_isa\": \"" << tape_lane_isa() << "\",\n";
        out << "  \"legacy_frame\": [" << kLegacyW << ", " << kLegacyH << "],\n";
        out << "  \"engine_frame\": [" << kEngineW << ", " << kEngineH << "],\n";
        out << "  \"kernels\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const Kernel_result& r = results[i];
            out << "    {\"name\": \"" << r.name << "\", \"legacy\": "
                << format_fixed(r.legacy_mcells, 3) << ", \"engine_small_1t\": "
                << format_fixed(r.engine_small_mcells, 3) << ", \"engine_1t\": "
                << format_fixed(r.engine_1t_mcells, 3) << ", \"engine_8t\": "
                << format_fixed(r.engine_8t_mcells, 3) << ", \"speedup_1t\": "
                << format_fixed(r.speedup_1t(), 2) << ", \"scaling_8t\": "
                << format_fixed(r.scaling_8t(), 2) << ", \"byte_identical\": "
                << (r.engine_matches_legacy && r.threads_byte_identical ? "true"
                                                                        : "false")
                << "}" << (i + 1 < results.size() ? "," : "") << "\n";
        }
        out << "  ],\n";
        out << "  \"tiled\": {\"kernel\": \"" << kTiledKernel << "\", \"frame\": ["
            << kTiledW << ", "
            << kTiledH << "], \"iterations\": " << kTiledIters
            << ", \"tile_depth\": " << tiled.depth << ", \"untiled_1t\": "
            << format_fixed(tiled.untiled_mcells, 3) << ", \"tiled_1t\": "
            << format_fixed(tiled.tiled_mcells, 3) << ", \"speedup\": "
            << format_fixed(tiled.speedup(), 2) << ", \"byte_identical\": "
            << (tiled.byte_identical ? "true" : "false") << "},\n";
        out << "  \"fixed\": {\"kernel\": \"" << kFixedKernel << "\", \"format\": \""
            << to_string(kFixedFormat) << "\", \"reference_1t\": "
            << format_fixed(fixed.reference_mcells, 3) << ", \"engine_1t\": "
            << format_fixed(fixed.engine_mcells, 3) << ", \"speedup\": "
            << format_fixed(fixed.speedup(), 2) << ", \"word_identical\": "
            << (fixed.word_identical ? "true" : "false") << "},\n";
        // Single-thread Mcells/s anchors in both domains on the wide frame,
        // plus the measured memory-bandwidth roofline they sit under.
        // Absolute numbers are recorded for the log, only the same-host
        // fixed/double ratio is gated.
        out << "  \"wide\": {\"kernel\": \"" << kWideKernel << "\", \"format\": \""
            << to_string(kWideFormat) << "\", \"frame\": [" << kWideW << ", " << kWideH
            << "], \"iterations\": " << kWideIters << ", \"double_1t\": "
            << format_fixed(wide.double_mcells, 3) << ", \"fixed_1t\": "
            << format_fixed(wide.fixed_mcells, 3) << ", \"ratio\": "
            << format_fixed(wide.ratio(), 2) << ", \"word_identical\": "
            << (wide.word_identical ? "true" : "false") << "},\n";
        out << "  \"dram\": {\"copy_gbps\": " << format_fixed(dram.copy_gbps, 2)
            << ", \"untiled_roofline_mcells\": "
            << format_fixed(dram.untiled_roofline_mcells(), 1) << "},\n";
        if (scaling.measured) {
            out << "  \"tiled_threads\": {\"kernel\": \"" << kTiledKernel
                << "\", \"tiled_1t\": " << format_fixed(scaling.tiled_1t_mcells, 3)
                << ", \"tiled_4t\": " << format_fixed(scaling.tiled_4t_mcells, 3)
                << ", \"scaling\": " << format_fixed(scaling.scaling(), 2)
                << ", \"byte_identical\": "
                << (scaling.byte_identical ? "true" : "false") << "},\n";
        }
        out << "  \"gated_metrics\": {\n";
        for (const Kernel_result& r : results) {
            out << "    \"" << r.name << "_speedup_1t\": "
                << format_fixed(r.speedup_1t(), 2) << ",\n";
        }
        out << "    \"" << kTiledKernel
            << "_tiled_speedup_1t\": " << format_fixed(tiled.speedup(), 2) << ",\n";
        out << "    \"fixed_row_speedup_1t\": " << format_fixed(fixed.speedup(), 2)
            << ",\n";
        out << "    \"fixed_vs_double_wide_1t\": " << format_fixed(wide.ratio(), 2)
            << "\n";
        out << "  },\n";
        // Metrics that only exist on capable hosts: compared against the
        // baseline when present on both sides, tolerated when either side
        // lacks them (tools/check_bench.py "optional_gated_metrics").
        out << "  \"optional_gated_metrics\": {";
        if (scaling.measured) {
            out << "\n    \"tiled_scaling_4t\": " << format_fixed(scaling.scaling(), 2)
                << "\n  ";
        }
        out << "}\n}\n";
    });
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    std::cout << "micro_sim_throughput — compiled scanline engine vs per-pixel "
                 "interpreter\n\n";
    const int hw = resolve_thread_count(0);
    std::cout << "[INFO] host: " << hw << " hardware thread(s)\n";
    std::cout << "[INFO] cache: " << to_string(cache_topology()) << "\n";
    std::cout << "[INFO] tape lane ISA: " << tape_lane_isa() << "\n";

    std::vector<Kernel_result> results;
    for (const std::string name : {"heat", "igf", "chambolle"}) {
        results.push_back(bench_kernel(name));
        const Kernel_result& r = results.back();
        std::cout << "[INFO] " << r.name << ": legacy "
                  << format_fixed(r.legacy_mcells, 2) << " Mcells/s vs engine "
                  << format_fixed(r.engine_small_mcells, 2)
                  << " Mcells/s on the same workload ("
                  << format_fixed(r.speedup_1t(), 1) << "x); large frame: 1t "
                  << format_fixed(r.engine_1t_mcells, 2) << " Mcells/s, 8t "
                  << format_fixed(r.engine_8t_mcells, 2) << " Mcells/s (scaling "
                  << format_fixed(r.scaling_8t(), 2) << "x)\n";
    }
    std::cout << "\n";

    const Tiled_result tiled = bench_tiled();
    std::cout << "[INFO] temporal tiling (" << kTiledKernel << ", " << kTiledW << "x"
              << kTiledH << ", "
              << kTiledIters << " iterations, depth " << tiled.depth << "): untiled 1t "
              << format_fixed(tiled.untiled_mcells, 2) << " Mcells/s, tiled 1t "
              << format_fixed(tiled.tiled_mcells, 2) << " Mcells/s ("
              << format_fixed(tiled.speedup(), 2) << "x)\n";

    const Fixed_result fixed = bench_fixed();
    std::cout << "[INFO] fixed-point row engine (" << kFixedKernel << ", "
              << to_string(kFixedFormat) << "): per-pixel reference "
              << format_fixed(fixed.reference_mcells, 2) << " Mcells/s vs engine "
              << format_fixed(fixed.engine_mcells, 2) << " Mcells/s ("
              << format_fixed(fixed.speedup(), 1) << "x)\n";

    const Dram_result dram = bench_dram();
    std::cout << "[INFO] memory bandwidth: " << format_fixed(dram.copy_gbps, 1)
              << " GB/s copy -> untiled 3-stream roofline ~"
              << format_fixed(dram.untiled_roofline_mcells(), 0) << " Mcells/s\n";

    const Wide_result wide = bench_wide();
    std::cout << "[INFO] wide-frame anchor (" << kWideKernel << ", " << kWideW << "x"
              << kWideH << ", " << kWideIters << " iterations): double 1t "
              << format_fixed(wide.double_mcells, 2) << " Mcells/s, fixed "
              << to_string(kWideFormat) << " 1t "
              << format_fixed(wide.fixed_mcells, 2) << " Mcells/s (ratio "
              << format_fixed(wide.ratio(), 2) << ")\n";

    const Tiled_scaling_result scaling = bench_tiled_scaling(hw);
    if (scaling.measured) {
        std::cout << "[INFO] tiled thread scaling (" << kTiledKernel << "): 1t "
                  << format_fixed(scaling.tiled_1t_mcells, 2) << " Mcells/s, 4t "
                  << format_fixed(scaling.tiled_4t_mcells, 2) << " Mcells/s ("
                  << format_fixed(scaling.scaling(), 2) << "x)\n\n";
    } else {
        std::cout << "[INFO] tiled thread scaling skipped (host has " << hw
                  << " hardware thread(s), needs >= 4)\n\n";
    }

    int deviations = 0;
    for (const Kernel_result& r : results) {
        deviations += islhls_bench::report_claim(
            r.name + ": engine frames byte-identical to the legacy interpreter",
            r.engine_matches_legacy);
        deviations += islhls_bench::report_claim(
            r.name + ": 2- and 8-thread runs byte-identical to serial",
            r.threads_byte_identical);
        deviations += islhls_bench::report_claim(
            r.name + ": single-thread engine >= 5x the legacy interpreter",
            r.speedup_1t() >= 5.0);
        if (hw >= 4) {
            deviations += islhls_bench::report_claim(
                r.name + ": 8-thread engine >= 1.2x single-thread",
                r.scaling_8t() >= 1.2);
        } else {
            std::cout << "[INFO] " << r.name
                      << ": 8-thread scaling not gated (host has " << hw
                      << " hardware thread(s))\n";
        }
    }

    deviations += islhls_bench::report_claim(
        "tiled frames byte-identical to the untiled engine", tiled.byte_identical);
    deviations += islhls_bench::report_claim(
        "temporal tiling >= 1.3x the untiled single-thread engine on the "
        "out-of-cache frame",
        tiled.speedup() >= 1.3);
    deviations += islhls_bench::report_claim(
        "fixed row engine raw words identical to the per-pixel run_fixed_raw "
        "sweep",
        fixed.word_identical);
    deviations += islhls_bench::report_claim(
        "fixed row engine >= 5x the per-pixel fixed reference",
        fixed.speedup() >= 5.0);
    deviations += islhls_bench::report_claim(
        "wide-frame fixed raw words identical between default and 64-column "
        "panel runs",
        wide.word_identical);
    if (scaling.measured) {
        deviations += islhls_bench::report_claim(
            "4-thread tiled frames byte-identical to single-thread",
            scaling.byte_identical);
    }

    if (!json_path.empty()) {
        if (write_json(json_path, results, tiled, fixed, wide, dram, scaling, hw)) {
            std::cout << "\nwrote " << json_path << "\n";
        } else {
            deviations += 1;
        }
    }
    return deviations == 0 ? 0 : 1;
}
