// Figure 9 reproduction: Chambolle Pareto curve (1024x768).
#include <algorithm>

#include "bench_common.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
    using namespace islhls;
    using namespace islhls_bench;

    std::cout << "=== Fig. 9: Chambolle Pareto curve (1024x768) ===\n\n";

    Hls_flow flow = Hls_flow::from_kernel(kernel_by_name("chambolle"), paper_options());
    const auto result = flow.pareto();
    const auto igf_result =
        Hls_flow::from_kernel(kernel_by_name("igf"), paper_options()).pareto();

    std::cout << "evaluated " << result.points.size() << " design points, Pareto set of "
              << result.front.size() << "\n\n";

    Table table({"kLUTs (est)", "ms/frame", "fps", "architecture"});
    for (std::size_t idx : result.front) {
        const auto& p = result.points[idx];
        table.add(format_fixed(p.estimated_area_luts / 1000.0, 1),
                  format_fixed(p.throughput.seconds_per_frame * 1e3, 2),
                  format_fixed(p.throughput.fps, 1), to_string(p.instance));
    }
    std::cout << table << "\n";

    report_claim("Pareto set is non-empty", !result.front.empty());

    // The paper's two curves differ by roughly the workload complexity:
    // at comparable area, Chambolle is several times slower than IGF.
    auto best_time_under = [](const Explorer::Pareto_result& r, double area_cap) {
        double best = 1e30;
        for (const auto& p : r.points) {
            if (p.estimated_area_luts <= area_cap) {
                best = std::min(best, p.throughput.seconds_per_frame);
            }
        }
        return best;
    };
    const double cap = 300e3;
    const double chamb = best_time_under(result, cap);
    const double igf = best_time_under(igf_result, cap);
    report_claim(cat("at 300 kLUTs, Chambolle is >=3x slower than IGF (",
                     format_fixed(chamb / igf, 1), "x)"),
                 chamb > 3.0 * igf);
    return 0;
}
