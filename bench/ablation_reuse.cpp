// Ablation: the register-reuse technique of Sec. 3.2 / Fig. 4.
//
// The paper argues that plain symbolic execution explodes exponentially and
// that storing each repeated operation once ("register reuse") is what makes
// cone generation tractable. This bench quantifies it: for each kernel and
// cone geometry it compares the tree-expanded operation count (no reuse —
// what naive equation expansion would synthesize) against the DAG register
// count (with reuse), and translates the gap into virtual-synthesis area.
#include "bench_common.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
    using namespace islhls;
    using namespace islhls_bench;

    std::cout << "=== Ablation: register reuse (Fig. 4's motivation) ===\n\n";

    Table table({"kernel", "cone", "ops w/o reuse", "registers w/ reuse", "reuse x",
                 "est kLUT w/o", "est kLUT w/"});
    double worst_blowup = 0.0;
    bool reuse_grows_with_depth = true;

    for (const char* kernel_name : {"igf", "chambolle", "jacobi", "mean"}) {
        Hls_flow flow =
            Hls_flow::from_kernel(kernel_by_name(kernel_name), paper_options());
        double prev_reuse = 0.0;
        for (int d : {1, 2, 3, 4}) {
            const Cone_stats& stats = flow.cones().stats(4, d);
            const double with_reuse =
                flow.explorer().evaluator().estimated_cone_area(4, d);
            // Without reuse each tree node is its own operator: area scales
            // by the reuse factor (same operator mix).
            const double without_reuse = with_reuse * stats.reuse_factor();
            table.add(kernel_name, to_string(stats.spec),
                      format_grouped(static_cast<long long>(
                          stats.naive_operation_count)),
                      stats.register_count, format_fixed(stats.reuse_factor(), 2),
                      format_fixed(without_reuse / 1e3, 1),
                      format_fixed(with_reuse / 1e3, 1));
            worst_blowup = std::max(worst_blowup, stats.reuse_factor());
            if (d > 1 && stats.reuse_factor() < prev_reuse) {
                reuse_grows_with_depth = false;
            }
            prev_reuse = stats.reuse_factor();
        }
    }
    std::cout << table << "\n";

    report_claim(cat("reuse saves >5x operators on deep cones (max ",
                     format_fixed(worst_blowup, 1), "x)"),
                 worst_blowup > 5.0);
    report_claim("the deeper the cone, the more the reuse matters (factor grows "
                 "with depth for every kernel)",
                 reuse_grows_with_depth);

    // The memory/performance conflict of Sec. 2.2: window buffers vs frames.
    Hls_flow igf = Hls_flow::from_kernel(kernel_by_name("igf"), paper_options());
    Arch_instance instance;
    instance.window = 8;
    instance.level_depths = {5, 5};
    instance.cores_per_depth = {{5, 1}};
    const auto eval = igf.explorer().evaluator().evaluate(instance);
    std::cout << "\non-chip buffers for w=8, [5,5]: "
              << format_fixed(eval.memory.total_kbits, 1) << " kbit vs whole-frame "
              << format_fixed(eval.memory.whole_frame_kbits / 1024.0, 1)
              << " Mbit (saving " << format_fixed(eval.memory.saving_factor, 0)
              << "x)\n";
    report_claim("cone buffers are orders of magnitude below whole-frame buffers",
                 eval.memory.saving_factor > 100.0);
    return 0;
}
