// Serial vs parallel design-space exploration on the IGF kernel.
//
// Runs the paper's full Pareto sweep and device fit (1024x768, N = 10,
// windows 1..9, depths 1..5, XC6VLX760) twice from a cold cache: once with
// the serial explorer (threads = 1) and once fanned across 8 threads. The
// bench then checks the refactor's two contracts:
//
//   1. determinism — the parallel Pareto front and device-fit grid are
//      byte-identical to the serial results (full-precision dump compare);
//   2. speedup — the sweep's synthesis workload (the dominating modeled
//      cost: the virtual tool runtimes are minutes to hours per cone, which
//      is exactly why the paper estimates instead of synthesizing) consists
//      of independent per-(window, depth) jobs, and scheduling those jobs
//      across 8 synthesis workers cuts the synthesis-phase makespan by >= 3x
//      versus the serial one-after-another order.
//
// Host wall times for the model-evaluation phase are reported as INFO: they
// track the thread count only when the host actually has spare cores, so
// they are measured but not gated on (CI machines are often 1-2 cores).
//
// With --json <path> the run is recorded as a BENCH_dse.json perf-trajectory
// record (temp file + rename, same discipline as micro_sim_throughput); the
// "gated_metrics" block carries the host-portable synthesis-makespan speedup
// that tools/check_bench.py diffs against the committed baseline in CI.
// It also times the multi-backend seam: one cold sweep over the paper
// backend alone vs the same sweep over paper + streaming through one shared
// Cone_library. The streaming backend's candidates are closed-form and its
// calibration reuses the paper backend's synthesis set, so the whole second
// backend must cost at most 1.5x the single-backend sweep; the gated
// "multi_backend_sweep_overhead" metric stores the INVERTED ratio
// t_paper/t_all (gates are higher-is-better).
#include <chrono>
#include <iostream>
#include <numeric>
#include <string>

#include "bench_common.hpp"
#include "core/service.hpp"
#include "dse/explorer.hpp"
#include "kernels/kernels.hpp"
#include "support/parallel.hpp"
#include "support/text.hpp"
#include "symexec/executor.hpp"
#include "synth/device.hpp"

namespace {

using namespace islhls;

struct Sweep_run {
    std::string pareto_dump;
    std::string fit_dump;
    double wall_ms = 0.0;
    double synthesis_cpu_seconds = 0.0;
    std::vector<double> synthesis_costs;
    std::size_t points = 0;
    std::size_t front = 0;
};

Sweep_run run_sweep(int threads) {
    const Kernel_def& igf = kernel_by_name("igf");
    Cone_library library(extract_stencil(igf.c_source), igf.name);

    const Flow_options paper = islhls_bench::paper_options();
    Evaluator_options evaluator_options;
    evaluator_options.frame_width = paper.frame_width;
    evaluator_options.frame_height = paper.frame_height;
    Space_options space = paper.space;
    space.iterations = paper.iterations;
    space.threads = threads;

    Explorer explorer(library, device_by_name(paper.device), evaluator_options,
                      space);

    const auto start = std::chrono::steady_clock::now();
    const Explorer::Pareto_result pareto = explorer.explore_pareto();
    const Explorer::Fit_result fit = explorer.fit_device();
    const auto stop = std::chrono::steady_clock::now();

    Sweep_run run;
    run.pareto_dump = dump(pareto);
    run.fit_dump = dump(fit);
    run.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
    run.synthesis_cpu_seconds = library.synthesis_cpu_seconds();
    run.synthesis_costs = library.synthesis_costs();
    run.points = pareto.points.size();
    run.front = pareto.front.size();
    return run;
}

// Cold multi-backend sweep wall time (a fresh service per run, so each
// measurement pays its own cone builds and virtual syntheses).
double time_backend_sweep(const std::vector<std::string>& backends) {
    Sweep_config config;
    config.kernels = {"igf", "jacobi"};
    config.devices = {"xc6vlx760"};
    config.iteration_counts = {10};
    config.frame_width = islhls_bench::paper_options().frame_width;
    config.frame_height = islhls_bench::paper_options().frame_height;
    config.with_pareto = true;
    config.backends = backends;
    Sweep_service service;
    const auto start = std::chrono::steady_clock::now();
    const Sweep_report report = service.run(config);
    const auto stop = std::chrono::steady_clock::now();
    if (report.entries.empty()) return 0.0;  // keeps the claim false below
    return std::chrono::duration<double, std::milli>(stop - start).count();
}

// The bench fails when the record could not be written, so CI never passes
// with a missing or stale perf record.
bool write_json(const std::string& path, const Sweep_run& serial,
                const Sweep_run& parallel, double serial_synth,
                double parallel_synth, double speedup, double overhead_inv) {
    return islhls_bench::write_json_record(path, [&](std::ostream& out) {
        out << "{\n";
        out << "  \"bench\": \"micro_dse_parallel\",\n";
        out << "  \"kernel\": \"igf\",\n";
        out << "  \"hardware_threads\": " << resolve_thread_count(0) << ",\n";
        out << "  \"design_points\": " << serial.points << ",\n";
        out << "  \"pareto_front\": " << serial.front << ",\n";
        out << "  \"synthesis_jobs\": " << parallel.synthesis_costs.size() << ",\n";
        out << "  \"serial_synthesis_hours\": " << format_fixed(serial_synth / 3600.0, 3)
            << ",\n";
        out << "  \"parallel_synthesis_hours\": "
            << format_fixed(parallel_synth / 3600.0, 3) << ",\n";
        out << "  \"model_eval_wall_ms\": {\"serial\": " << format_fixed(serial.wall_ms, 1)
            << ", \"threads_8\": " << format_fixed(parallel.wall_ms, 1) << "},\n";
        out << "  \"gated_metrics\": {\n";
        out << "    \"synthesis_makespan_speedup_8w\": " << format_fixed(speedup, 2)
            << ",\n";
        out << "    \"multi_backend_sweep_overhead\": "
            << format_fixed(overhead_inv, 2) << "\n";
        out << "  }\n}\n";
    });
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    std::cout << "micro_dse_parallel — serial vs 8-thread DSE on IGF\n\n";

    const Sweep_run serial = run_sweep(1);
    const Sweep_run parallel = run_sweep(8);

    std::cout << "Pareto sweep: " << serial.points << " design points, front of "
              << serial.front << "\n";
    std::cout << "[INFO] host: " << resolve_thread_count(0)
              << " hardware thread(s)\n";
    std::cout << "[INFO] model-evaluation wall: serial "
              << format_fixed(serial.wall_ms, 1) << " ms, 8-thread "
              << format_fixed(parallel.wall_ms, 1) << " ms\n";

    // The modeled synthesis workload, scheduled serially vs across 8 workers.
    const double serial_synth = serial.synthesis_cpu_seconds;
    const double parallel_synth = lpt_makespan(parallel.synthesis_costs, 8);
    const double speedup = parallel_synth > 0.0 ? serial_synth / parallel_synth : 0.0;
    std::cout << "[INFO] synthesis phase: " << parallel.synthesis_costs.size()
              << " independent jobs, " << format_fixed(serial_synth / 3600.0, 2)
              << " tool-hours serial, " << format_fixed(parallel_synth / 3600.0, 2)
              << " tool-hours across 8 workers (" << format_fixed(speedup, 2)
              << "x)\n\n";

    int deviations = 0;
    deviations += islhls_bench::report_claim(
        "parallel Pareto front is byte-identical to the serial sweep",
        parallel.pareto_dump == serial.pareto_dump);
    deviations += islhls_bench::report_claim(
        "parallel device-fit grid is byte-identical to the serial sweep",
        parallel.fit_dump == serial.fit_dump);
    deviations += islhls_bench::report_claim(
        "same synthesis workload discovered by both schedules",
        parallel.synthesis_costs == serial.synthesis_costs);
    deviations += islhls_bench::report_claim(
        "8-thread sweep cuts the synthesis-phase makespan by >= 3x",
        speedup >= 3.0);

    // The multi-backend seam: adding the streaming backend to a cold sweep
    // must ride the shared Cone_library instead of redoing the heavy work.
    const double t_paper = time_backend_sweep({"paper"});
    const double t_all = time_backend_sweep({"paper", "streaming"});
    const double overhead = t_paper > 0.0 ? t_all / t_paper : 0.0;
    const double overhead_inv = t_all > 0.0 ? t_paper / t_all : 0.0;
    std::cout << "\n[INFO] cold sweep (igf+jacobi, pareto): paper-only "
              << format_fixed(t_paper, 1) << " ms, paper+streaming "
              << format_fixed(t_all, 1) << " ms ("
              << format_fixed(overhead, 2) << "x)\n\n";
    deviations += islhls_bench::report_claim(
        "paper+streaming sweep costs <= 1.5x the paper-only sweep",
        t_paper > 0.0 && t_all > 0.0 && overhead <= 1.5);

    if (!json_path.empty()) {
        if (write_json(json_path, serial, parallel, serial_synth, parallel_synth,
                       speedup, overhead_inv)) {
            std::cout << "\nwrote " << json_path << "\n";
        } else {
            deviations += 1;
        }
    }
    return deviations == 0 ? 0 : 1;
}
