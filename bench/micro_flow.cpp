// Micro-benchmarks (google-benchmark) of the flow's own compile-time costs:
// frontend+symbolic execution, cone construction, program lowering, virtual
// synthesis and Pareto extraction. These quantify the paper's point that the
// analysis side is cheap — it is the (real) synthesis that forces the
// estimation-based exploration.
#include <benchmark/benchmark.h>

#include "core/flow.hpp"
#include "grid/frame_ops.hpp"
#include "dse/pareto.hpp"
#include "sim/arch_sim.hpp"
#include "sim/golden.hpp"
#include "support/prng.hpp"
#include "symexec/executor.hpp"

namespace {

using namespace islhls;

void bench_symexec(benchmark::State& state) {
    const std::string& src =
        kernel_by_name(state.range(0) == 0 ? "igf" : "chambolle").c_source;
    for (auto _ : state) {
        Stencil_step step = extract_stencil(src);
        benchmark::DoNotOptimize(step.max_reach());
    }
}
BENCHMARK(bench_symexec)->Arg(0)->Arg(1)->Name("symexec/kernel");

void bench_cone_build(benchmark::State& state) {
    const int w = static_cast<int>(state.range(0));
    const int d = static_cast<int>(state.range(1));
    for (auto _ : state) {
        state.PauseTiming();
        Stencil_step step = extract_stencil(kernel_by_name("igf").c_source);
        state.ResumeTiming();
        const Cone cone(step, Cone_spec{w, w, d});
        benchmark::DoNotOptimize(cone.stats().register_count);
    }
    state.SetLabel("registers grow ~ w^2 * d");
}
BENCHMARK(bench_cone_build)
    ->Args({2, 2})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({8, 4})
    ->Name("cone_build/igf");

void bench_virtual_synthesis(benchmark::State& state) {
    Stencil_step step = extract_stencil(kernel_by_name("chambolle").c_source);
    const Cone cone(step, Cone_spec{4, 4, 3});
    const Fpga_device& device = device_by_name("xc6vlx760");
    for (auto _ : state) {
        benchmark::DoNotOptimize(synthesize_cone(cone, "chambolle", device));
    }
}
BENCHMARK(bench_virtual_synthesis)->Name("virtual_synthesis/chambolle_w4d3");

void bench_cone_execution(benchmark::State& state) {
    Stencil_step step = extract_stencil(kernel_by_name("igf").c_source);
    const Cone cone(step, Cone_spec{4, 4, 3});
    const Register_program& prog = cone.program();
    Prng rng(1);
    std::vector<double> inputs;
    for (int i = 0; i < prog.input_count(); ++i) inputs.push_back(rng.next_in(0, 255));
    for (auto _ : state) {
        benchmark::DoNotOptimize(prog.run(inputs));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long long>(prog.outputs().size()));
}
BENCHMARK(bench_cone_execution)->Name("cone_execute/igf_w4d3");

void bench_pareto_extraction(benchmark::State& state) {
    Prng rng(7);
    std::vector<Design_point> points;
    for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i) {
        points.push_back({rng.next_in(0, 1e6), rng.next_in(0, 1.0), i});
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(pareto_front(points));
    }
}
BENCHMARK(bench_pareto_extraction)->Arg(100)->Arg(1000)->Arg(10000)->Name("pareto");

void bench_arch_simulation(benchmark::State& state) {
    const Kernel_def& kernel = kernel_by_name("igf");
    Cone_library library(extract_stencil(kernel.c_source), kernel.name);
    Arch_instance instance;
    instance.window = 4;
    instance.level_depths = {2, 2};
    const Frame content = make_synthetic_scene(64, 48, 5);
    const Frame_set initial = kernel.make_initial(content);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simulate_architecture(library, instance, initial, {}));
    }
    state.SetItemsProcessed(state.iterations() * 64 * 48);
}
BENCHMARK(bench_arch_simulation)->Name("arch_sim/igf_64x48_d2d2");

}  // namespace

BENCHMARK_MAIN();
