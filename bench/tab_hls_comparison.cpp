// Section 4.3 reproduction: comparison against commercial HLS tools.
//
// The paper ran the IGF through Vivado HLS and Synphony C Compiler:
//   - the best directive combination reached only 0.14 fps on 1024x768;
//   - loop merging was rejected (inter-iteration dependencies);
//   - flattening + pipelining ran out of memory on a 16 GB machine.
// The generic-HLS cost model reproduces all three outcomes; our cone flow
// result on the same workload shows the orders-of-magnitude gap.
#include "baseline/frame_buffer.hpp"
#include "baseline/generic_hls.hpp"
#include "bench_common.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
    using namespace islhls;
    using namespace islhls_bench;

    std::cout << "=== Sec. 4.3: commercial HLS tools vs the cone flow (IGF, "
                 "1024x768, N=10) ===\n\n";

    const Flow_options options = paper_options();
    Hls_flow flow = Hls_flow::from_kernel(kernel_by_name("igf"), options);
    const Fpga_device& device = flow.device();

    const auto menu = run_generic_hls_menu(flow.cones().step(), options.iterations,
                                           options.frame_width, options.frame_height,
                                           device);
    Table table({"directive", "outcome", "fps", "note"});
    for (const auto& r : menu) {
        table.add(to_string(r.directive), r.succeeded ? "ok" : "FAILED",
                  r.succeeded ? format_fixed(r.fps, 3) : std::string("-"),
                  r.succeeded ? "" : r.failure.substr(0, 60) + "...");
    }
    const auto fit = flow.device_fit();
    table.add("cone flow (this work)", "ok", format_fixed(fit.best.throughput.fps, 1),
              to_string(fit.best.instance));
    std::cout << table << "\n";

    const Generic_hls_result& best = best_of(menu);
    std::cout << "best generic-HLS configuration: " << to_string(best.directive)
              << " at " << format_fixed(best.fps, 3)
              << " fps (paper: 0.14 fps); cone flow: "
              << format_fixed(fit.best.throughput.fps, 1) << " fps -> speedup "
              << format_fixed(fit.best.throughput.fps / best.fps, 0) << "x\n\n";

    int merge_failed = 0;
    int oom_failed = 0;
    for (const auto& r : menu) {
        if (r.directive == Hls_directive::loop_merge && !r.succeeded) merge_failed = 1;
        if (r.directive == Hls_directive::flatten_and_pipeline && !r.succeeded) {
            oom_failed = 1;
        }
    }
    report_claim("loop merge fails on the ISL inter-iteration dependency",
                 merge_failed == 1);
    report_claim("flatten+pipeline exhausts tool memory on realistic frames",
                 oom_failed == 1);
    report_claim(cat("generic HLS stays sub-real-time (best ",
                     format_fixed(best.fps, 3), " fps, paper 0.14)"),
                 best.fps < 3.0);
    report_claim(cat("cone flow is orders of magnitude faster (",
                     format_fixed(fit.best.throughput.fps / best.fps, 0), "x)"),
                 fit.best.throughput.fps / best.fps > 100.0);
    return 0;
}
