// Figure 6 reproduction: IGF Pareto curve (time per frame vs kLUTs) for
// 1024x768 frames. The paper shows the evaluated cloud with the Pareto set
// in a zoomed window; the exploration "typically requires the evaluation of
// a few hundreds of solutions".
#include <algorithm>

#include "bench_common.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
    using namespace islhls;
    using namespace islhls_bench;

    std::cout << "=== Fig. 6: IGF Pareto curve (1024x768) ===\n\n";

    Hls_flow flow = Hls_flow::from_kernel(kernel_by_name("igf"), paper_options());
    const auto result = flow.pareto();

    std::cout << "evaluated " << result.points.size()
              << " design points (paper: a few hundred), Pareto set of "
              << result.front.size() << "\n\n";

    Table table({"kLUTs (est)", "ms/frame", "fps", "architecture"});
    for (std::size_t idx : result.front) {
        const auto& p = result.points[idx];
        table.add(format_fixed(p.estimated_area_luts / 1000.0, 1),
                  format_fixed(p.throughput.seconds_per_frame * 1e3, 3),
                  format_fixed(p.throughput.fps, 1), to_string(p.instance));
    }
    std::cout << table << "\n";

    // Claims: curve shape (monotone trade-off), point count in the paper's
    // order of magnitude, and a wide dynamic range on both axes.
    bool monotone = true;
    for (std::size_t i = 1; i < result.front.size(); ++i) {
        const auto& prev = result.points[result.front[i - 1]];
        const auto& cur = result.points[result.front[i]];
        if (!(cur.estimated_area_luts > prev.estimated_area_luts &&
              cur.throughput.seconds_per_frame < prev.throughput.seconds_per_frame)) {
            monotone = false;
        }
    }
    report_claim("Pareto front trades area monotonically against time", monotone);
    report_claim(cat("evaluation count in the paper's 'few hundreds' regime: ",
                     result.points.size()),
                 result.points.size() >= 100 && result.points.size() <= 5000);
    const auto [min_it, max_it] = std::minmax_element(
        result.front.begin(), result.front.end(), [&](std::size_t a, std::size_t b) {
            return result.points[a].throughput.seconds_per_frame <
                   result.points[b].throughput.seconds_per_frame;
        });
    const double spread =
        result.points[*max_it].throughput.seconds_per_frame /
        result.points[*min_it].throughput.seconds_per_frame;
    report_claim(cat("front spans >50x in time per frame (spread ",
                     format_fixed(spread, 0), "x)"),
                 spread > 50.0);
    return 0;
}
