// Figure 5 reproduction: IGF area estimation.
//
// The paper plots estimated vs. actually-synthesized kLUTs of IGF cone
// architectures over the output window area (1..81 elements) for 1..5 fused
// iterations, with alpha calibrated from the two smallest syntheses per
// depth. Reported accuracy: max error 6.58 %, average 2.93 %.
#include "bench_common.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
    using namespace islhls;
    using namespace islhls_bench;

    std::cout << "=== Fig. 5: IGF area estimation (estimated vs actual kLUTs) ===\n"
              << "device xc6vlx760, alpha from the two smallest windows per depth\n\n";

    Hls_flow flow = Hls_flow::from_kernel(kernel_by_name("igf"), paper_options());

    // Phase 1 — what the flow actually needs: estimate the whole grid. Only
    // the calibration designs are synthesized here.
    const Space_options& space = flow.explorer().space();
    for (int d = 1; d <= space.max_depth; ++d) {
        for (int w = 1; w <= space.max_window; ++w) {
            flow.explorer().evaluator().estimated_cone_area(w, d);
        }
    }
    const int calibration_runs = flow.cones().synthesis_runs();

    // Phase 2 — ground truth for the comparison: synthesize everything.
    const auto validation = flow.area_validation();

    Table table({"window", "area(elems)", "depth", "registers", "actual kLUT",
                 "estimated kLUT", "err %", "alpha point"});
    for (const auto& p : validation.points) {
        table.add(cat(p.window, "x", p.window), p.window * p.window, p.depth,
                  p.registers, format_fixed(p.actual_luts / 1000.0, 1),
                  format_fixed(p.estimated_luts / 1000.0, 1),
                  format_fixed(p.rel_error * 100.0, 2), p.is_calibration ? "yes" : "");
    }
    std::cout << table << "\n";

    const double max_pct = validation.max_rel_error * 100.0;
    const double avg_pct = validation.avg_rel_error * 100.0;
    std::cout << "max error " << format_fixed(max_pct, 2) << " % (paper: 6.58 %), "
              << "average " << format_fixed(avg_pct, 2) << " % (paper: 2.93 %)\n";
    std::cout << "syntheses run: " << flow.cones().synthesis_runs()
              << " of " << validation.points.size() << " designs; simulated tool time "
              << format_fixed(flow.cones().synthesis_cpu_seconds() / 3600.0, 1)
              << " h for the calibration set\n\n";

    int deviations = 0;
    deviations += report_claim(
        cat("estimation needs only 2 syntheses per depth (", calibration_runs,
            " for the whole grid)"),
        calibration_runs == 2 * paper_options().space.max_depth);
    deviations += report_claim(cat("average error within paper band (<5%): ",
                                   format_fixed(avg_pct, 2), "%"),
                               avg_pct < 5.0);
    deviations += report_claim(cat("max error within 2x of paper's 6.58%: ",
                                   format_fixed(max_pct, 2), "%"),
                               max_pct < 13.2);
    return deviations == 0 ? 0 : 0;  // deviations are reported, not fatal
}
