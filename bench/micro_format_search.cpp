// Fixed-point format search: batched tape execution vs the per-sample
// interpreter.
//
// The automatic Qm.f search (estimate/format_search.hpp) evaluates every
// candidate format over many sample windows. Before the fixed-point tape
// engine, each (format, sample) pair ran through run_fixed — a fresh
// register file allocated per call, one branchy dispatch per instruction.
// The batched path lowers the tape once per format (Fixed_tape) and
// advances kLane samples per tape operation out of reusable scratch
// (Fixed_exec::run_raw_batch).
//
// This bench measures the like-for-like PSNR evaluation of a fixed list of
// candidate formats over the same sample set both ways, and checks the
// engine's contracts:
//
//   1. correctness — batched raw outputs are byte-identical (memcmp) to
//      run_fixed_raw on every sample, and the batched MSE equals the
//      interpreter MSE exactly (MSE, not PSNR: an exact format has mse 0
//      and no finite PSNR — exactness is a state, never a sentinel dB);
//   2. determinism — search_fixed_format returns the identical
//      Format_search_result at 1, 2 and 8 threads;
//   3. speed — the batched single-thread evaluation is >= 5x the
//      per-sample interpreter, and the full per-format evaluation (area +
//      f_max + fps at each candidate width, the format grid's warm path)
//      stays cheap next to the bare area re-price it replaced.
//
// With --json <path> the measurements are written as a BENCH_fixed.json
// record (temp file + rename); tools/run_benches.sh wires this into the
// repo's perf trajectory and tools/check_bench.py gates CI on the ratio
// recorded under "gated_metrics".
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cone/cone.hpp"
#include "dse/cone_library.hpp"
#include "dse/evaluator.hpp"
#include "estimate/format_search.hpp"
#include "grid/frame_ops.hpp"
#include "kernels/kernels.hpp"
#include "sim/fixed_exec.hpp"
#include "support/prng.hpp"
#include "support/text.hpp"
#include "symexec/executor.hpp"
#include "synth/device.hpp"

namespace {

using namespace islhls;

constexpr int kFrameW = 64, kFrameH = 48;
constexpr int kSamples = 512;
constexpr std::uint64_t kSeed = 99;
constexpr const char* kKernel = "igf";
const Cone_spec kConeSpec{3, 3, 2};

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
}

template <typename Fn>
double min_seconds(int reps, const Fn& body) {
    double best = 1e300;
    for (int i = 0; i < reps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        body();
        best = std::min(best, seconds_since(t0));
    }
    return best;
}

// The sample set the search evaluates formats over: flat inputs, double
// references, and the integer bits fixed by the range analysis (the same
// gathering search_fixed_format performs).
struct Sample_set {
    std::vector<std::vector<double>> inputs;   // per sample, port order
    std::vector<double> flat_inputs;           // row-major samples x ports
    std::vector<std::vector<double>> references;
    int integer_bits = 0;
    std::size_t in_count = 0;
    std::size_t out_count = 0;
};

Sample_set gather_samples(const Register_program& program, const Stencil_step& step,
                          const Frame_set& content, Boundary boundary) {
    Sample_set set;
    set.in_count = program.input_ports().size();
    set.out_count = program.outputs().size();
    Prng rng(kSeed);
    std::vector<double> trace;
    double max_abs = 0.0;
    for (int s = 0; s < kSamples; ++s) {
        const int ox = rng.next_int(0, content.width() - 1);
        const int oy = rng.next_int(0, content.height() - 1);
        std::vector<double> inputs;
        inputs.reserve(set.in_count);
        for (const auto& port : program.input_ports()) {
            const Frame& f = content.field(step.pool().field_name(port.field));
            inputs.push_back(f.sample(ox + port.dx, oy + port.dy, boundary));
        }
        program.run_trace_into(inputs, trace);
        for (double v : trace) max_abs = std::max(max_abs, std::fabs(v));
        std::vector<double> reference;
        for (std::int32_t r : program.outputs()) {
            reference.push_back(trace[static_cast<std::size_t>(r)]);
        }
        set.flat_inputs.insert(set.flat_inputs.end(), inputs.begin(), inputs.end());
        set.references.push_back(std::move(reference));
        set.inputs.push_back(std::move(inputs));
    }
    set.integer_bits =
        2 + static_cast<int>(std::ceil(std::log2(std::max(1.0, max_abs))));
    return set;
}

// The pre-batching search inner loop: one interpreter run per sample, a
// fresh register file allocated inside every run_fixed call. Returns the
// MSE against the double references; 0.0 means the format is exact.
double mse_interpreter(const Register_program& program, const Sample_set& set,
                       const Fixed_format& fmt) {
    double se = 0.0;
    long long count = 0;
    for (std::size_t s = 0; s < set.inputs.size(); ++s) {
        const std::vector<double> fixed = run_fixed(program, set.inputs[s], fmt);
        for (std::size_t o = 0; o < fixed.size(); ++o) {
            const double d = fixed[o] - set.references[s][o];
            se += d * d;
            count += 1;
        }
    }
    return se / static_cast<double>(count);
}

// The batched evaluation: quantize the flat inputs, one tape pass over all
// samples, MSE folded in the same order as the interpreter loop.
double mse_batched(const Register_program& program, const Sample_set& set,
                   const Fixed_format& fmt,
                   std::vector<std::int64_t>& raw_inputs,
                   std::vector<std::int64_t>& raw_outputs,
                   Fixed_exec::Scratch& scratch) {
    const Fixed_exec exec(program, fmt);
    const Raw_quantizer quantize(fmt);
    for (std::size_t k = 0; k < set.flat_inputs.size(); ++k) {
        raw_inputs[k] = quantize(set.flat_inputs[k]);
    }
    exec.run_raw_batch(raw_inputs.data(), set.inputs.size(), raw_outputs.data(),
                       scratch);
    double se = 0.0;
    long long count = 0;
    for (std::size_t k = 0; k < set.inputs.size() * set.out_count; ++k) {
        const double d =
            from_raw(raw_outputs[k], fmt) -
            set.references[k / set.out_count][k % set.out_count];
        se += d * d;
        count += 1;
    }
    return se / static_cast<double>(count);
}

bool same_result(const Format_search_result& a, const Format_search_result& b) {
    return a.format == b.format && a.psnr_db == b.psnr_db && a.exact == b.exact &&
           a.max_abs_value == b.max_abs_value &&
           a.range_integer_bits == b.range_integer_bits &&
           a.formats_tried == b.formats_tried && a.satisfiable == b.satisfiable;
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    std::cout << "micro_format_search — batched fixed-point tape vs per-sample "
                 "interpreter\n\n";

    const Kernel_def& kernel = kernel_by_name(kKernel);
    Stencil_step step = extract_stencil(kernel.c_source);
    Cone_library library(step, kernel.name);
    const Cone& cone = library.cone(kConeSpec.window_width, kConeSpec.depth);
    const Register_program& program = cone.program();
    Frame_set content(kFrameW, kFrameH);
    content.add_field("u", make_synthetic_scene(kFrameW, kFrameH, 8));

    const Sample_set set = gather_samples(program, step, content, kernel.boundary);
    // The candidate list a real search walks: every fraction width from 1 up
    // to the 32-bit budget at the range-fixed integer bits.
    std::vector<Fixed_format> formats;
    for (int frac = 1; set.integer_bits + frac <= 32; ++frac) {
        formats.push_back(Fixed_format{set.integer_bits, frac});
    }
    std::cout << "[INFO] " << kKernel << " cone " << to_string(kConeSpec) << ": "
              << program.register_count() << " registers, " << set.in_count
              << " inputs, " << kSamples << " sample windows, " << formats.size()
              << " candidate formats (Q" << set.integer_bits << ".1..)\n";

    // --- correctness: batched raw outputs byte-identical to run_fixed_raw ----
    std::vector<std::int64_t> raw_inputs(set.flat_inputs.size());
    std::vector<std::int64_t> raw_outputs(kSamples * set.out_count);
    Fixed_exec::Scratch scratch;
    bool raw_identical = true;
    for (const Fixed_format& fmt :
         {formats.front(), formats[formats.size() / 2], formats.back()}) {
        const Fixed_exec exec(program, fmt);
        for (std::size_t k = 0; k < set.flat_inputs.size(); ++k) {
            raw_inputs[k] = to_raw(set.flat_inputs[k], fmt);
        }
        exec.run_raw_batch(raw_inputs.data(), kSamples, raw_outputs.data(), scratch);
        for (std::size_t s = 0; s < kSamples && raw_identical; ++s) {
            std::vector<std::int64_t> one(raw_inputs.begin() + s * set.in_count,
                                          raw_inputs.begin() + (s + 1) * set.in_count);
            const std::vector<std::int64_t> ref = run_fixed_raw(program, one, fmt);
            raw_identical =
                std::memcmp(ref.data(), raw_outputs.data() + s * set.out_count,
                            set.out_count * sizeof(std::int64_t)) == 0;
        }
    }

    // --- like-for-like MSE evaluation over the full candidate list -----------
    std::vector<double> interp_mse(formats.size());
    std::vector<double> batched_mse(formats.size());
    const double interp_s = min_seconds(3, [&] {
        for (std::size_t f = 0; f < formats.size(); ++f) {
            interp_mse[f] = mse_interpreter(program, set, formats[f]);
        }
    });
    const double batched_s = min_seconds(3, [&] {
        for (std::size_t f = 0; f < formats.size(); ++f) {
            batched_mse[f] = mse_batched(program, set, formats[f], raw_inputs,
                                         raw_outputs, scratch);
        }
    });
    const bool mse_identical = interp_mse == batched_mse;
    const double speedup = batched_s > 0.0 ? interp_s / batched_s : 0.0;
    std::cout << "[INFO] MSE evaluation, " << formats.size() << " formats x "
              << kSamples << " windows: interpreter "
              << format_fixed(interp_s * 1e3, 2) << " ms, batched 1t "
              << format_fixed(batched_s * 1e3, 2) << " ms ("
              << format_fixed(speedup, 1) << "x)\n";

    // --- full per-format evaluation vs bare area re-price (warm path) --------
    // The format grid now fully evaluates every cell's canonical design
    // point at its searched width (area + f_max + fps through a calibrated
    // Arch_evaluator) where it used to re-price area alone. Both legs run
    // warm — the first rep populates the library's memoized syntheses — and
    // the inner repeat lifts the cheap leg out of timer granularity.
    const Fpga_device& device = device_by_name("xc6vlx760");
    Arch_instance instance;
    instance.window = kConeSpec.window_width;
    instance.level_depths = {kConeSpec.depth};
    instance.cores_per_depth[kConeSpec.depth] = 1;
    constexpr int kPriceReps = 50;
    double fps_sink = 0.0;
    const double full_eval_s = min_seconds(3, [&] {
        for (int r = 0; r < kPriceReps; ++r) {
            for (const Fixed_format& fmt : formats) {
                Evaluator_options priced;
                priced.format = fmt;
                priced.synth.format = fmt;
                const Arch_evaluator evaluator(library, device, priced);
                fps_sink += evaluator.evaluate(instance).throughput.fps;
            }
        }
    });
    const double area_only_s = min_seconds(3, [&] {
        for (int r = 0; r < kPriceReps; ++r) {
            for (const Fixed_format& fmt : formats) {
                Synth_options synth;
                synth.format = fmt;
                fps_sink += library
                                .synthesis(kConeSpec.window_width, kConeSpec.depth,
                                           device, synth)
                                .lut_count;
            }
        }
    });
    // Inverted so bigger is better for the CI gate: how much of the full
    // evaluation's cost the bare area lookup already was.
    const double full_eval_overhead =
        full_eval_s > 0.0 ? area_only_s / full_eval_s : 0.0;
    std::cout << "[INFO] warm per-format pricing, " << formats.size()
              << " formats x " << kPriceReps << " reps: full eval "
              << format_fixed(full_eval_s * 1e3, 2) << " ms, area-only "
              << format_fixed(area_only_s * 1e3, 2) << " ms (ratio "
              << format_fixed(full_eval_overhead, 3) << ", sink "
              << format_fixed(fps_sink, 0) << ")\n";

    // --- end-to-end search identity across thread counts ---------------------
    Format_search_options options;
    options.sample_windows = kSamples;
    options.seed = kSeed;
    const auto search_at = [&](int threads) {
        Format_search_options o = options;
        o.threads = threads;
        return search_fixed_format(cone, content, kernel.boundary, o);
    };
    const auto t0 = std::chrono::steady_clock::now();
    const Format_search_result search_1t = search_at(1);
    const double search_1t_s = seconds_since(t0);
    const Format_search_result search_2t = search_at(2);
    const auto t8 = std::chrono::steady_clock::now();
    const Format_search_result search_8t = search_at(8);
    const double search_8t_s = seconds_since(t8);
    const bool search_identical =
        same_result(search_1t, search_2t) && same_result(search_1t, search_8t);
    std::cout << "[INFO] search_fixed_format: " << to_string(search_1t.format)
              << " at "
              << (search_1t.exact ? std::string("exact")
                                  : cat(format_fixed(search_1t.psnr_db, 1), " dB"))
              << " after "
              << search_1t.formats_tried << " formats; wall 1t "
              << format_fixed(search_1t_s * 1e3, 2) << " ms, 8t "
              << format_fixed(search_8t_s * 1e3, 2) << " ms\n\n";

    int deviations = 0;
    deviations += islhls_bench::report_claim(
        "batched raw outputs byte-identical to run_fixed_raw on every sample",
        raw_identical);
    deviations += islhls_bench::report_claim(
        "batched MSE equals the interpreter MSE exactly on every format",
        mse_identical);
    deviations += islhls_bench::report_claim(
        "search result identical at 1, 2 and 8 threads", search_identical);
    deviations += islhls_bench::report_claim(
        "batched format evaluation >= 5x the per-sample interpreter",
        speedup >= 5.0);
    deviations += islhls_bench::report_claim(
        "warm full per-format evaluation within 100x the bare area re-price",
        full_eval_overhead >= 0.01);

    if (!json_path.empty()) {
        const bool ok = islhls_bench::write_json_record(json_path, [&](std::ostream& out) {
            out << "{\n";
            out << "  \"bench\": \"micro_format_search\",\n";
            out << "  \"kernel\": \"" << kKernel << "\",\n";
            out << "  \"cone\": \"" << to_string(kConeSpec) << "\",\n";
            out << "  \"sample_windows\": " << kSamples << ",\n";
            out << "  \"candidate_formats\": " << formats.size() << ",\n";
            out << "  \"interpreter_ms\": " << format_fixed(interp_s * 1e3, 3) << ",\n";
            out << "  \"batched_1t_ms\": " << format_fixed(batched_s * 1e3, 3) << ",\n";
            out << "  \"search_1t_ms\": " << format_fixed(search_1t_s * 1e3, 3) << ",\n";
            out << "  \"search_8t_ms\": " << format_fixed(search_8t_s * 1e3, 3) << ",\n";
            out << "  \"chosen_format\": \"" << to_string(search_1t.format) << "\",\n";
            out << "  \"full_eval_ms\": " << format_fixed(full_eval_s * 1e3, 3)
                << ",\n";
            out << "  \"area_only_ms\": " << format_fixed(area_only_s * 1e3, 3)
                << ",\n";
            out << "  \"byte_identical\": "
                << (raw_identical && mse_identical && search_identical ? "true"
                                                                       : "false")
                << ",\n";
            out << "  \"gated_metrics\": {\n";
            out << "    \"format_eval_batched_speedup_1t\": "
                << format_fixed(speedup, 2) << ",\n";
            out << "    \"format_full_eval_overhead\": "
                << format_fixed(full_eval_overhead, 4) << "\n";
            out << "  }\n}\n";
        });
        if (ok) {
            std::cout << "\nwrote " << json_path << "\n";
        } else {
            deviations += 1;
        }
    }
    return deviations == 0 ? 0 : 1;
}
