// Sections 4.1/4.2 reproduction: comparison against published designs.
//
// IGF side (Sec. 4.1): [16] runs a 20-iteration 3x3 convolution on a
// Virtex-II Pro at 13.5 fps (1024x768) and <5 fps (Full HD); the paper's
// flow reaches ~35 fps on Full HD on the same part and ~110 fps at 1024x768
// on a Virtex-6.
// Chambolle side (Sec. 4.2): the hand-made design [19] reaches 38 fps at
// 1024x768 and 99 fps at 512x512 after months of work; the automatic flow
// obtains comparable rates (24 / 72 fps), and [3][22][23] stay sub-real-time.
#include "baseline/literature.hpp"
#include "bench_common.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

namespace {

double flow_fps(const char* kernel, int iterations, int w, int h, const char* device) {
    islhls::Flow_options options = islhls_bench::paper_options();
    options.iterations = iterations;
    options.frame_width = w;
    options.frame_height = h;
    options.device = device;
    islhls::Hls_flow flow =
        islhls::Hls_flow::from_kernel(islhls::kernel_by_name(kernel), options);
    const auto fit = flow.device_fit();
    return fit.has_best ? fit.best.throughput.fps : 0.0;
}

}  // namespace

int main() {
    using namespace islhls;
    using namespace islhls_bench;

    std::cout << "=== Secs. 4.1/4.2: comparison with published implementations ===\n\n";

    Table table({"system", "device", "workload", "fps", "source"});
    for (const auto& p : literature_points()) {
        table.add(p.system.substr(0, 44), p.device, p.workload, format_fixed(p.fps, 1),
                  p.citation);
    }

    // Our flow on the matching workloads. Note: our virtual Virtex-II Pro is
    // deliberately conservative (4 elems/cycle external bus, 2.2x logic
    // delay), so the V2P rows under-run the paper's claim there — recorded
    // as a known deviation in EXPERIMENTS.md. The modern-device argument
    // (the paper's own headline: "with a Virtex-6 ... 110 fps") is checked
    // on the Virtex-6 rows.
    const double conv_v2p_1024 = flow_fps("igf", 20, 1024, 768, "xc2vp30");
    const double conv_v6_fullhd = flow_fps("igf", 20, 1920, 1080, "xc6vlx760");
    const double igf_v6_1024 = flow_fps("igf", 10, 1024, 768, "xc6vlx760");
    const double chamb_v6_1024 = flow_fps("chambolle", 10, 1024, 768, "xc6vlx760");
    const double chamb_v6_512 = flow_fps("chambolle", 10, 512, 512, "xc6vlx760");

    table.add("cone flow (this work)", "Virtex-II Pro", "convolution 1024x768",
              format_fixed(conv_v2p_1024, 1), "generated");
    table.add("cone flow (this work)", "Virtex-6", "convolution 1920x1080",
              format_fixed(conv_v6_fullhd, 1), "generated (20 iterations)");
    table.add("cone flow (this work)", "Virtex-6", "convolution 1024x768",
              format_fixed(igf_v6_1024, 1), "generated (paper: ~110)");
    table.add("cone flow (this work)", "Virtex-6", "chambolle 1024x768",
              format_fixed(chamb_v6_1024, 1), "generated (paper: 24)");
    table.add("cone flow (this work)", "Virtex-6", "chambolle 512x512",
              format_fixed(chamb_v6_512, 1), "generated (paper: 72)");
    std::cout << table << "\n";

    report_claim(cat("on a modern Virtex-6 the flow is ~an order of magnitude above "
                     "[16]'s 13.5 fps (",
                     format_fixed(igf_v6_1024, 1), " fps)"),
                 igf_v6_1024 > 5.0 * 13.5);
    report_claim(cat("Full HD with 20 iterations stays in the same order of "
                     "magnitude as the paper's 35 fps (",
                     format_fixed(conv_v6_fullhd, 1),
                     " fps; known-conservative, see EXPERIMENTS.md)"),
                 conv_v6_fullhd >= 8.0);
    report_claim(
        cat("automatic Chambolle is comparable to the hand design [19] (",
            format_fixed(chamb_v6_1024, 1), " vs 38 fps; paper got 24)"),
        chamb_v6_1024 > 38.0 * 0.4 && chamb_v6_1024 < 38.0 * 1.5);
    report_claim(cat("512x512 Chambolle in the [19] comparison band (",
                     format_fixed(chamb_v6_512, 1), " vs paper's 72)"),
                 chamb_v6_512 > 72.0 * 0.4 && chamb_v6_512 < 72.0 * 2.0);
    report_claim("the non-ISL-parallel references stay below the 30 fps real-time "
                 "threshold",
                 [] {
                     for (const auto& p : literature_for("chambolle")) {
                         if (p.citation.find("Akin") == std::string::npos &&
                             p.fps >= 30.0) {
                             return false;
                         }
                     }
                     return true;
                 }());
    return 0;
}
