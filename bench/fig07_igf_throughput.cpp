// Figure 7 reproduction: IGF throughput on a Virtex-6 XC6VLX760 when the
// whole device is used, as a function of output window area, one series per
// cone depth (1..5 fused iterations), N = 10, 1024x768 frames.
//
// Paper claims reproduced here:
//   - depths that divide N (1, 2, 5) outperform those that do not (3, 4),
//     because non-divisors need an extra remainder core type;
//   - the trend over the window size is not monotone (bigger cones are
//     faster per element, but fewer of them fit);
//   - peak throughput is around 110 fps on this device.
#include <map>

#include "bench_common.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
    using namespace islhls;
    using namespace islhls_bench;

    std::cout << "=== Fig. 7: IGF throughput on xc6vlx760 (fps; N=10, 1024x768) ===\n\n";

    Hls_flow flow = Hls_flow::from_kernel(kernel_by_name("igf"), paper_options());
    const auto fit = flow.device_fit();
    const Space_options& space = flow.explorer().space();

    Table table({"depth \\ window area", "1", "4", "9", "16", "25", "36", "49", "64",
                 "81"});
    std::map<int, double> best_per_depth;
    for (int d = 1; d <= space.max_depth; ++d) {
        std::vector<std::string> row{cat(d, " iteration", d > 1 ? "s" : "")};
        for (int w = 1; w <= space.max_window; ++w) {
            const auto& cell = fit.grid[static_cast<std::size_t>((w - 1) * space.max_depth +
                                                                 (d - 1))];
            if (cell.valid) {
                row.push_back(format_fixed(cell.eval.throughput.fps, 1));
                best_per_depth[d] =
                    std::max(best_per_depth[d], cell.eval.throughput.fps);
            } else {
                row.push_back("-");
            }
        }
        table.add_row(row);
    }
    std::cout << table << "\n";
    if (fit.has_best) {
        std::cout << "best: " << to_string(fit.best.instance) << " -> "
                  << format_fixed(fit.best.throughput.fps, 1) << " fps ("
                  << format_fixed(fit.best.estimated_area_luts / 1e3, 0)
                  << " kLUTs, bottleneck " << fit.best.throughput.bottleneck
                  << "); paper peak: ~110 fps\n\n";
    }

    const double worst_divisor =
        std::min({best_per_depth[1], best_per_depth[2], best_per_depth[5]});
    const double best_nondivisor = std::max(best_per_depth[3], best_per_depth[4]);
    report_claim(cat("every divisor depth beats every non-divisor depth (min divisor ",
                     format_fixed(worst_divisor, 1), " vs max non-divisor ",
                     format_fixed(best_nondivisor, 1), " fps)"),
                 worst_divisor > best_nondivisor);
    report_claim(cat("peak within 2x of the paper's ~110 fps: ",
                     format_fixed(fit.best.throughput.fps, 1)),
                 fit.has_best && fit.best.throughput.fps > 55.0 &&
                     fit.best.throughput.fps < 220.0);
    // Non-monotonicity: some depth series must decrease somewhere.
    bool non_monotone = false;
    for (int d = 1; d <= space.max_depth; ++d) {
        double prev = -1.0;
        for (int w = 1; w <= space.max_window; ++w) {
            const auto& cell = fit.grid[static_cast<std::size_t>((w - 1) * space.max_depth +
                                                                 (d - 1))];
            if (!cell.valid) continue;
            if (prev > 0.0 && cell.eval.throughput.fps < prev) non_monotone = true;
            prev = cell.eval.throughput.fps;
        }
    }
    report_claim("throughput is not monotone in the window size", non_monotone);
    report_claim("the overall best depth divides N=10",
                 fit.has_best && 10 % fit.best.instance.level_depths.front() == 0);
    return 0;
}
