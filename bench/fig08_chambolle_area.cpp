// Figure 8 reproduction: Chambolle area estimation (estimated vs actual
// kLUTs). Paper accuracy: max error 6.36 %, average 2.19 %.
#include "bench_common.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
    using namespace islhls;
    using namespace islhls_bench;

    std::cout << "=== Fig. 8: Chambolle area estimation ===\n"
              << "device xc6vlx760, alpha from the two smallest windows per depth\n\n";

    Hls_flow flow = Hls_flow::from_kernel(kernel_by_name("chambolle"), paper_options());
    const auto validation = flow.area_validation();

    // Compact view: one row per (depth, window), like the figure's series.
    Table table({"depth", "window area", "registers", "actual kLUT", "estimated kLUT",
                 "err %"});
    for (const auto& p : validation.points) {
        if (p.is_calibration) continue;
        table.add(p.depth, p.window * p.window, p.registers,
                  format_fixed(p.actual_luts / 1000.0, 1),
                  format_fixed(p.estimated_luts / 1000.0, 1),
                  format_fixed(p.rel_error * 100.0, 2));
    }
    std::cout << table << "\n";

    const double max_pct = validation.max_rel_error * 100.0;
    const double avg_pct = validation.avg_rel_error * 100.0;
    std::cout << "max error " << format_fixed(max_pct, 2) << " % (paper: 6.36 %), "
              << "average " << format_fixed(avg_pct, 2) << " % (paper: 2.19 %)\n\n";

    report_claim(cat("average error within paper band (<5%): ",
                     format_fixed(avg_pct, 2), "%"),
                 avg_pct < 5.0);
    report_claim(cat("max error within 2x of paper's 6.36%: ",
                     format_fixed(max_pct, 2), "%"),
                 max_pct < 12.7);
    report_claim("Chambolle cones are larger than IGF cones of equal geometry",
                 [&] {
                     Hls_flow igf =
                         Hls_flow::from_kernel(kernel_by_name("igf"), paper_options());
                     return flow.explorer().evaluator().actual_cone_area(4, 2) >
                            igf.explorer().evaluator().actual_cone_area(4, 2);
                 }());
    return 0;
}
